#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "src/common/parallel.hpp"
#include "src/mc/candidate_yield.hpp"
#include "src/mc/ocba.hpp"
#include "src/mc/synthetic.hpp"
#include "src/stats/rng.hpp"
#include "src/stats/summary.hpp"

namespace moheco::mc {
namespace {

TEST(Parallel, RunsEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](int, std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Parallel, PropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(10,
                                 [&](int, std::size_t i) {
                                   if (i == 5) throw InvalidArgument("boom");
                                 }),
               InvalidArgument);
  // Pool must still be usable afterwards.
  std::atomic<int> n{0};
  pool.parallel_for(10, [&](int, std::size_t) { ++n; });
  EXPECT_EQ(n.load(), 10);
}

TEST(Quadratic, TrueYieldMatchesMc) {
  const QuadraticYieldProblem problem(2, 8, 1.0, 0.5);
  const std::vector<double> x = {0.5, 0.5};
  ThreadPool pool(4);
  const double estimate = reference_yield(problem, x, 40000, 42, pool);
  EXPECT_NEAR(estimate, problem.true_yield(x), 0.01);
}

TEST(Quadratic, NominalScreen) {
  const QuadraticYieldProblem problem(2, 4, 1.0, 0.3);
  auto inside = problem.open(std::vector<double>{0.2, 0.2});
  EXPECT_TRUE(inside->evaluate({}).pass);
  auto outside = problem.open(std::vector<double>{1.5, 1.5});
  const SampleResult r = outside->evaluate({});
  EXPECT_FALSE(r.pass);
  EXPECT_GT(r.violation, 0.0);
}

TEST(CandidateYield, ScreenCountsOneSim) {
  const QuadraticYieldProblem problem(2, 4, 1.0, 0.3);
  CandidateYield c(problem, {0.1, 0.1}, 1);
  SimCounter sims;
  c.screen_nominal(sims);
  c.screen_nominal(sims);  // cached
  EXPECT_EQ(sims.total(), 1);
  EXPECT_TRUE(c.nominal_feasible());
}

TEST(CandidateYield, RefineAccumulatesAndCounts) {
  const QuadraticYieldProblem problem(2, 4, 1.0, 0.5);
  ThreadPool pool(4);
  SimCounter sims;
  CandidateYield c(problem, {0.3, 0.3}, 7);
  c.refine(100, pool, sims, McOptions{});
  EXPECT_EQ(c.samples(), 100);
  EXPECT_EQ(sims.total(), 100);
  c.refine(50, pool, sims, McOptions{});
  EXPECT_EQ(c.samples(), 150);
  EXPECT_EQ(sims.total(), 150);
  EXPECT_GE(c.mean(), 0.0);
  EXPECT_LE(c.mean(), 1.0);
}

TEST(CandidateYield, DeterministicAcrossThreadCounts) {
  const QuadraticYieldProblem problem(3, 6, 1.0, 0.4);
  const std::vector<double> x = {0.4, 0.3, 0.2};
  long long passes1 = 0, passes4 = 0;
  {
    ThreadPool pool(1);
    SimCounter sims;
    CandidateYield c(problem, x, 99);
    c.refine(500, pool, sims, McOptions{});
    passes1 = c.passes();
  }
  {
    ThreadPool pool(4);
    SimCounter sims;
    CandidateYield c(problem, x, 99);
    c.refine(500, pool, sims, McOptions{});
    passes4 = c.passes();
  }
  EXPECT_EQ(passes1, passes4);
}

TEST(CandidateYield, EstimateConvergesToTruth) {
  const QuadraticYieldProblem problem(2, 10, 1.0, 0.5);
  const std::vector<double> x = {0.6, 0.3};
  ThreadPool pool(8);
  SimCounter sims;
  CandidateYield c(problem, x, 5);
  c.refine(20000, pool, sims, McOptions{});
  EXPECT_NEAR(c.mean(), problem.true_yield(x), 0.015);
}

TEST(CandidateYield, SmoothedVarianceNeverZero) {
  const BernoulliArmsProblem problem({1.0});
  ThreadPool pool(2);
  SimCounter sims;
  CandidateYield c(problem, {0.0}, 3);
  c.refine(200, pool, sims, McOptions{});
  EXPECT_EQ(c.mean(), 1.0);  // arm with yield 1 always passes
  EXPECT_GT(c.smoothed_variance(), 0.0);
}

TEST(Ocba, AllocationSumsToTotal) {
  const std::vector<double> means = {0.9, 0.7, 0.5, 0.3};
  const std::vector<double> vars = {0.09, 0.21, 0.25, 0.21};
  for (long long total : {10LL, 100LL, 999LL, 12345LL}) {
    const auto n = ocba_allocation(means, vars, total);
    EXPECT_EQ(std::accumulate(n.begin(), n.end(), 0LL), total);
    for (long long v : n) EXPECT_GE(v, 0);
  }
}

TEST(Ocba, RatiosFollowEquationOne) {
  // Two non-best candidates i, j: n_i/n_j = (sigma_i/delta_i)^2/(sigma_j/delta_j)^2.
  const std::vector<double> means = {0.9, 0.8, 0.5};
  const std::vector<double> vars = {0.09, 0.16, 0.25};
  const auto n = ocba_allocation(means, vars, 1000000);
  const double di = 0.1, dj = 0.4;
  const double expected_ratio = (vars[1] / (di * di)) / (vars[2] / (dj * dj));
  const double actual_ratio =
      static_cast<double>(n[1]) / static_cast<double>(n[2]);
  EXPECT_NEAR(actual_ratio, expected_ratio, 0.01 * expected_ratio);
}

TEST(Ocba, BestGetsSqrtRule) {
  const std::vector<double> means = {0.9, 0.8, 0.5};
  const std::vector<double> vars = {0.09, 0.16, 0.25};
  const auto n = ocba_allocation(means, vars, 1000000);
  // n_b = sigma_b * sqrt(sum_{i!=b} n_i^2 / sigma_i^2)
  const double expected = std::sqrt(vars[0]) *
                          std::sqrt(static_cast<double>(n[1]) * n[1] / vars[1] +
                                    static_cast<double>(n[2]) * n[2] / vars[2]);
  EXPECT_NEAR(static_cast<double>(n[0]), expected, 0.02 * expected);
}

TEST(Ocba, CloseCompetitorOutweighsDistantOne) {
  // The candidate nearest to the best must receive more samples.
  const std::vector<double> means = {0.95, 0.93, 0.40};
  const std::vector<double> vars = {0.05, 0.07, 0.24};
  const auto n = ocba_allocation(means, vars, 10000);
  EXPECT_GT(n[1], 5 * n[2]);
}

TEST(Ocba, SingleCandidateTakesAll) {
  const auto n = ocba_allocation(std::vector<double>{0.5},
                                 std::vector<double>{0.25}, 77);
  ASSERT_EQ(n.size(), 1u);
  EXPECT_EQ(n[0], 77);
}

TEST(TwoStage, SpendsApproxSimAvgTimesN) {
  const QuadraticYieldProblem problem(2, 6, 1.0, 0.5);
  ThreadPool pool(4);
  SimCounter sims;
  std::vector<std::unique_ptr<CandidateYield>> owners;
  std::vector<CandidateYield*> cands;
  stats::Rng rng(5);
  for (int i = 0; i < 10; ++i) {
    // Designs of varying quality, all nominally feasible.
    const double r = 0.08 * i;
    owners.push_back(std::make_unique<CandidateYield>(
        problem, std::vector<double>{r, 0.0}, 100 + i));
    owners.back()->screen_nominal(sims);
    cands.push_back(owners.back().get());
  }
  const long long screen_cost = sims.total();
  TwoStageOptions options;
  options.n0 = 15;
  options.sim_avg = 35;
  options.n_max = 200;
  options.stage2_threshold = 2.0;  // disable stage 2 for this test
  two_stage_estimate(cands, options, pool, sims);
  const long long spent = sims.total() - screen_cost;
  EXPECT_GE(spent, 35 * 10 - 20);
  EXPECT_LE(spent, 35 * 10 + 20);
  for (const auto& c : owners) EXPECT_GE(c->samples(), 15);
}

TEST(TwoStage, PromotesHighYieldCandidates) {
  // One arm at 100% yield, others low: the good one must reach n_max.
  const BernoulliArmsProblem problem({1.0, 0.3, 0.2, 0.1});
  ThreadPool pool(4);
  SimCounter sims;
  std::vector<std::unique_ptr<CandidateYield>> owners;
  std::vector<CandidateYield*> cands;
  for (int i = 0; i < 4; ++i) {
    owners.push_back(std::make_unique<CandidateYield>(
        problem, std::vector<double>{static_cast<double>(i)}, 10 + i));
    owners.back()->screen_nominal(sims);
    cands.push_back(owners.back().get());
  }
  TwoStageOptions options;
  options.n0 = 15;
  options.sim_avg = 35;
  options.n_max = 300;
  options.stage2_threshold = 0.97;
  const auto promoted = two_stage_estimate(cands, options, pool, sims);
  ASSERT_EQ(promoted.size(), 1u);
  EXPECT_EQ(promoted[0], 0u);
  EXPECT_EQ(owners[0]->samples(), 300);
  EXPECT_EQ(owners[0]->mean(), 1.0);
  // Bad arms stay cheap.
  EXPECT_LT(owners[3]->samples(), 100);
}

TEST(TwoStage, OcbaBeatsEqualAllocationOnSelection) {
  // Probability of correctly identifying the best arm under a tight budget:
  // OCBA allocation must beat equal allocation.  PMC sampling (LHS would
  // make 1-D Bernoulli estimation nearly exact and hide the effect).
  const BernoulliArmsProblem problem({0.74, 0.78, 0.55, 0.40, 0.82});
  ThreadPool pool(4);
  const int kReps = 250;
  const long long budget = 250;
  McOptions pmc;
  pmc.sampling = stats::SamplingMethod::kPMC;
  int correct_ocba = 0, correct_equal = 0;
  for (int rep = 0; rep < kReps; ++rep) {
    // --- OCBA (via two_stage_estimate with threshold off). ---
    {
      SimCounter sims;
      std::vector<std::unique_ptr<CandidateYield>> owners;
      std::vector<CandidateYield*> cands;
      for (int i = 0; i < 5; ++i) {
        owners.push_back(std::make_unique<CandidateYield>(
            problem, std::vector<double>{static_cast<double>(i)},
            stats::derive_seed(999, rep, i)));
        cands.push_back(owners.back().get());
      }
      TwoStageOptions options;
      options.n0 = 15;
      options.sim_avg = static_cast<int>(budget / 5);
      options.n_max = 100000;
      options.stage2_threshold = 2.0;
      options.mc = pmc;
      two_stage_estimate(cands, options, pool, sims);
      std::size_t best = 0;
      for (std::size_t i = 1; i < owners.size(); ++i) {
        if (owners[i]->mean() > owners[best]->mean()) best = i;
      }
      if (best == 4) ++correct_ocba;
    }
    // --- Equal allocation, same total budget. ---
    {
      SimCounter sims;
      std::size_t best = 0;
      double best_mean = -1.0;
      for (int i = 0; i < 5; ++i) {
        CandidateYield c(problem, std::vector<double>{static_cast<double>(i)},
                         stats::derive_seed(999, rep, i));
        c.refine(budget / 5, pool, sims, pmc);
        if (c.mean() > best_mean) {
          best_mean = c.mean();
          best = static_cast<std::size_t>(i);
        }
      }
      if (best == 4) ++correct_equal;
    }
  }
  EXPECT_GT(correct_ocba, correct_equal);
}

}  // namespace
}  // namespace moheco::mc

// Unit tests of the sparse linear-solve subsystem: CSC building and slot
// replay, the Gilbert-Peierls LU against the dense reference, symbolic
// reuse via refactor(), pivot-breakdown fallback and scaling patterns.
#include <gtest/gtest.h>

#include <complex>
#include <cstdint>
#include <vector>

#include "src/linalg/lu.hpp"
#include "src/linalg/sparse.hpp"
#include "src/stats/rng.hpp"

namespace moheco::linalg {
namespace {

/// Random sparse pattern with a full diagonal and ~density off-diagonals;
/// diagonally dominant values so the system is comfortably solvable.
template <typename Scalar>
SparseMatrix<Scalar> random_system(int n, double density, std::uint64_t seed,
                                   std::vector<std::uint32_t>* slots,
                                   SparseBuilder* builder_out = nullptr) {
  stats::Rng rng(seed);
  SparseBuilder builder(static_cast<std::size_t>(n));
  std::vector<Scalar> values;
  auto value = [&]() -> Scalar {
    if constexpr (std::is_same_v<Scalar, std::complex<double>>) {
      return {rng.normal(), rng.normal()};
    } else {
      return rng.normal();
    }
  };
  for (int r = 0; r < n; ++r) {
    builder.add(r, r);
    values.push_back(value() + Scalar(static_cast<double>(n)));
    for (int c = 0; c < n; ++c) {
      if (c == r || rng.uniform() >= density) continue;
      builder.add(r, c);
      values.push_back(value());
    }
  }
  SparseMatrix<Scalar> m = builder.finalize<Scalar>(slots);
  for (std::size_t i = 0; i < values.size(); ++i) {
    m.value((*slots)[i]) += values[i];
  }
  if (builder_out != nullptr) *builder_out = builder;
  return m;
}

template <typename Scalar>
std::vector<Scalar> random_vector(int n, std::uint64_t seed) {
  stats::Rng rng(seed);
  std::vector<Scalar> v(static_cast<std::size_t>(n));
  for (auto& x : v) {
    if constexpr (std::is_same_v<Scalar, std::complex<double>>) {
      x = {rng.normal(), rng.normal()};
    } else {
      x = rng.normal();
    }
  }
  return v;
}

TEST(SparseBuilder, DuplicatesMergeIntoOneSlot) {
  SparseBuilder builder(3);
  builder.add(0, 0);
  builder.add(1, 2);
  builder.add(0, 0);  // duplicate position, distinct add
  builder.add(2, 2);
  std::vector<std::uint32_t> slots;
  SparseMatrix<double> m = builder.finalize<double>(&slots);
  EXPECT_EQ(m.nnz(), 3u);
  ASSERT_EQ(slots.size(), 4u);
  EXPECT_EQ(slots[0], slots[2]);
  m.value(slots[0]) += 1.5;
  m.value(slots[1]) += -2.0;
  m.value(slots[2]) += 2.5;
  m.value(slots[3]) += 4.0;
  const MatrixD d = m.to_dense();
  EXPECT_DOUBLE_EQ(d(0, 0), 4.0);
  EXPECT_DOUBLE_EQ(d(1, 2), -2.0);
  EXPECT_DOUBLE_EQ(d(2, 2), 4.0);
  EXPECT_DOUBLE_EQ(d(1, 1), 0.0);
}

TEST(SparseBuilder, CscColumnsAreSorted) {
  SparseBuilder builder(4);
  builder.add(3, 1);
  builder.add(0, 1);
  builder.add(2, 1);
  std::vector<std::uint32_t> slots;
  SparseMatrix<double> m = builder.finalize<double>(&slots);
  ASSERT_EQ(m.nnz(), 3u);
  EXPECT_EQ(m.col_ptr()[1], 0);
  EXPECT_EQ(m.col_ptr()[2], 3);
  EXPECT_EQ(m.row_idx()[0], 0);
  EXPECT_EQ(m.row_idx()[1], 2);
  EXPECT_EQ(m.row_idx()[2], 3);
}

class SparseLuRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(SparseLuRandomTest, MatchesDenseSolve) {
  const int n = GetParam();
  std::vector<std::uint32_t> slots;
  SparseMatrix<double> a =
      random_system<double>(n, 0.05, 77 + static_cast<std::uint64_t>(n),
                            &slots);
  SparseLuSolver<double> solver;
  ASSERT_TRUE(solver.factor(a));
  const std::vector<double> b = random_vector<double>(n, 5);
  std::vector<double> x = b;
  solver.solve(x);
  VectorD x_ref = lu_solve(a.to_dense(), b);
  for (int i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_ref[i], 1e-10);
}

TEST_P(SparseLuRandomTest, ComplexMatchesDenseSolve) {
  using C = std::complex<double>;
  const int n = GetParam();
  std::vector<std::uint32_t> slots;
  SparseMatrix<C> a =
      random_system<C>(n, 0.05, 123 + static_cast<std::uint64_t>(n), &slots);
  SparseLuSolver<C> solver;
  ASSERT_TRUE(solver.factor(a));
  const std::vector<C> b = random_vector<C>(n, 6);
  std::vector<C> x = b;
  solver.solve(x);
  VectorC x_ref = lu_solve(a.to_dense(), b);
  for (int i = 0; i < n; ++i) EXPECT_NEAR(std::abs(x[i] - x_ref[i]), 0.0, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SparseLuRandomTest,
                         ::testing::Values(1, 2, 3, 8, 21, 55, 144, 377));

TEST(SparseLu, RefactorMatchesFreshFactor) {
  const int n = 120;
  SparseBuilder builder;
  std::vector<std::uint32_t> slots;
  SparseMatrix<double> a = random_system<double>(n, 0.04, 9, &slots, &builder);
  SparseLuSolver<double> solver;
  ASSERT_TRUE(solver.factor(a));
  EXPECT_EQ(solver.full_factorizations(), 1);

  // New values on the identical pattern: numeric-only refactorization.
  // Mild perturbation keeps the recorded pivots numerically acceptable.
  stats::Rng rng(10);
  for (std::size_t s = 0; s < a.nnz(); ++s) {
    a.value(s) *= 1.0 + 0.3 * rng.normal();
  }
  ASSERT_TRUE(solver.factor_with_reuse(a));
  EXPECT_EQ(solver.full_factorizations(), 1);
  EXPECT_EQ(solver.refactorizations(), 1);

  const std::vector<double> b = random_vector<double>(n, 11);
  std::vector<double> x = b;
  solver.solve(x);
  VectorD x_ref = lu_solve(a.to_dense(), b);
  for (int i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_ref[i], 1e-9);
}

TEST(SparseLu, PivotBreakdownFallsBackToFullFactor) {
  // Pattern: dense 2x2.  First values make the (0,0) diagonal the pivot;
  // the second set zeroes it, so the replayed pivot sequence is unusable
  // and factor_with_reuse must re-pivot via a full factorization.
  SparseBuilder builder(2);
  builder.add(0, 0);
  builder.add(0, 1);
  builder.add(1, 0);
  builder.add(1, 1);
  std::vector<std::uint32_t> slots;
  SparseMatrix<double> a = builder.finalize<double>(&slots);
  a.value(slots[0]) = 4.0;
  a.value(slots[1]) = 1.0;
  a.value(slots[2]) = 1.0;
  a.value(slots[3]) = 3.0;
  SparseLuSolver<double> solver;
  ASSERT_TRUE(solver.factor(a));

  a.clear_values();
  a.value(slots[0]) = 0.0;
  a.value(slots[1]) = 1.0;
  a.value(slots[2]) = 1.0;
  a.value(slots[3]) = 0.0;
  ASSERT_TRUE(solver.factor_with_reuse(a));
  EXPECT_EQ(solver.full_factorizations(), 2);
  std::vector<double> x = {2.0, 3.0};
  solver.solve(x);
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(SparseLu, ReportsSingular) {
  SparseBuilder builder(2);
  builder.add(0, 0);
  builder.add(0, 1);
  builder.add(1, 0);
  builder.add(1, 1);
  std::vector<std::uint32_t> slots;
  SparseMatrix<double> a = builder.finalize<double>(&slots);
  a.value(slots[0]) = 1.0;
  a.value(slots[1]) = 2.0;
  a.value(slots[2]) = 2.0;
  a.value(slots[3]) = 4.0;
  SparseLuSolver<double> solver;
  EXPECT_FALSE(solver.factor(a));
}

TEST(SparseLu, StructurallySingularColumn) {
  SparseBuilder builder(3);
  builder.add(0, 0);
  builder.add(1, 1);
  // column 2 is empty
  std::vector<std::uint32_t> slots;
  SparseMatrix<double> a = builder.finalize<double>(&slots);
  a.value(slots[0]) = 1.0;
  a.value(slots[1]) = 1.0;
  SparseLuSolver<double> solver;
  EXPECT_FALSE(solver.factor(a));
}

TEST(SparseLu, TridiagonalLadderHasNoFill) {
  // A tridiagonal pattern must factor with O(n) fill: the min-degree
  // ordering and the elimination produce exactly one off-diagonal per
  // column in L and U.
  const int n = 500;
  SparseBuilder builder(n);
  std::vector<double> values;
  for (int i = 0; i < n; ++i) {
    builder.add(i, i);
    values.push_back(2.1);
    if (i + 1 < n) {
      builder.add(i, i + 1);
      values.push_back(-1.0);
      builder.add(i + 1, i);
      values.push_back(-1.0);
    }
  }
  std::vector<std::uint32_t> slots;
  SparseMatrix<double> a = builder.finalize<double>(&slots);
  for (std::size_t i = 0; i < values.size(); ++i) a.value(slots[i]) += values[i];
  SparseLuSolver<double> solver;
  ASSERT_TRUE(solver.factor(a));
  // nnz(L) + nnz(U) + diag <= 3n (no fill beyond the tridiagonal band).
  EXPECT_LE(solver.factor_nnz(), static_cast<std::size_t>(3 * n));
  std::vector<double> b = random_vector<double>(n, 13);
  std::vector<double> x = b;
  solver.solve(x);
  VectorD x_ref = lu_solve(a.to_dense(), b);
  for (int i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_ref[i], 1e-10);
}

}  // namespace
}  // namespace moheco::linalg

// NetlistYieldProblem: the deck path and the hand-coded C++ path must share
// one evaluation pipeline.  The committed examples/five_t_ota.cir is the
// data twin of circuits::make_five_transistor_ota(); these tests prove the
// identity all the way from netlist construction to Monte-Carlo tallies and
// whole optimizer runs, plus the deck-problem session/warm-blob contract
// and the scheduler's cross-run blob persistence.
#include "src/circuits/netlist_problem.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "src/circuits/circuit_yield.hpp"
#include "src/circuits/topology.hpp"
#include "src/common/results_cache.hpp"
#include "src/core/moheco.hpp"
#include "src/mc/candidate_yield.hpp"
#include "src/mc/eval_scheduler.hpp"
#include "src/spice/netlist_format.hpp"
#include "src/stats/rng.hpp"

namespace moheco::circuits {
namespace {

std::string example_deck_path() {
  return std::string(MOHECO_SOURCE_DIR) + "/examples/five_t_ota.cir";
}

spice::Deck example_deck() { return spice::parse_deck_file(example_deck_path()); }

TEST(DeckTopology, MatchesBuiltinFiveTransistorOta) {
  const DeckTopology deck_topology(example_deck());
  const auto builtin = make_five_transistor_ota();

  ASSERT_EQ(deck_topology.design_vars().size(),
            builtin->design_vars().size());
  for (std::size_t i = 0; i < builtin->design_vars().size(); ++i) {
    EXPECT_EQ(deck_topology.design_vars()[i].name,
              builtin->design_vars()[i].name);
    EXPECT_EQ(deck_topology.design_vars()[i].lo,
              builtin->design_vars()[i].lo);
    EXPECT_EQ(deck_topology.design_vars()[i].hi,
              builtin->design_vars()[i].hi);
  }
  EXPECT_EQ(deck_topology.num_transistors(), builtin->num_transistors());

  ASSERT_EQ(deck_topology.specs().size(), builtin->specs().size());
  for (std::size_t i = 0; i < builtin->specs().size(); ++i) {
    EXPECT_EQ(deck_topology.specs()[i].metric, builtin->specs()[i].metric);
    EXPECT_EQ(deck_topology.specs()[i].lower_bound,
              builtin->specs()[i].lower_bound);
    EXPECT_EQ(deck_topology.specs()[i].bound, builtin->specs()[i].bound);
    EXPECT_EQ(deck_topology.specs()[i].scale, builtin->specs()[i].scale);
    EXPECT_EQ(deck_topology.specs()[i].label, builtin->specs()[i].label);
  }

  // The statistical model is the built-in 0.35um card.
  EXPECT_EQ(deck_topology.tech().inter_die.size(),
            builtin->tech().inter_die.size());
  EXPECT_EQ(deck_topology.tech().mismatch_nmos.a_vth,
            builtin->tech().mismatch_nmos.a_vth);

  // Bit-identical netlists at the deck's nominal design point: same node
  // table, same device order, same values (the round-trip helper lives in
  // test_deck_parser.cpp; here the exported decks being byte-identical is
  // an equivalent, simpler statement).
  const std::vector<double> x = deck_topology.nominal_x();
  EXPECT_EQ(spice::to_spice_deck(deck_topology.build(x).netlist, "twin"),
            spice::to_spice_deck(builtin->build(x).netlist, "twin"));
}

TEST(NetlistYieldProblem, NominalPerformanceMatchesBuiltin) {
  NetlistYieldProblem deck_problem(example_deck());
  const CircuitYieldProblem builtin(make_five_transistor_ota());
  const std::vector<double> x = deck_problem.nominal_x();

  const Performance a = deck_problem.performance(x, {});
  const Performance b = builtin.performance(x, {});
  EXPECT_TRUE(a.valid);
  EXPECT_EQ(a.a0_db, b.a0_db);
  EXPECT_EQ(a.gbw, b.gbw);
  EXPECT_EQ(a.pm_deg, b.pm_deg);
  EXPECT_EQ(a.swing, b.swing);
  EXPECT_EQ(a.power, b.power);
  EXPECT_EQ(a.offset, b.offset);
  EXPECT_EQ(a.area, b.area);
  EXPECT_EQ(a.sat_margin, b.sat_margin);
}

TEST(NetlistYieldProblem, IdenticalTalliesWithBuiltinProblem) {
  // The acceptance gate of the deck frontend: same design vector, same
  // sample stream seed => bit-identical pass/fail per sample, so the yield
  // tallies agree exactly (not just within MC noise).
  NetlistYieldProblem deck_problem(example_deck());
  const CircuitYieldProblem builtin(make_five_transistor_ota());
  ASSERT_EQ(deck_problem.noise_dim(), builtin.noise_dim());
  const std::vector<double> x = deck_problem.nominal_x();

  ThreadPool pool(4);
  mc::SimCounter sims;
  mc::CandidateYield deck_tally(deck_problem, x, /*stream_seed=*/77);
  mc::CandidateYield builtin_tally(builtin, x, /*stream_seed=*/77);
  EXPECT_EQ(deck_tally.screen_nominal(sims).pass,
            builtin_tally.screen_nominal(sims).pass);
  deck_tally.refine(400, pool, sims, {});
  builtin_tally.refine(400, pool, sims, {});
  EXPECT_EQ(deck_tally.samples(), builtin_tally.samples());
  EXPECT_EQ(deck_tally.passes(), builtin_tally.passes());
  // The committed nominal sits mid-yield on purpose, so this comparison
  // exercises both pass and fail samples.
  EXPECT_GT(deck_tally.passes(), 0);
  EXPECT_LT(deck_tally.passes(), deck_tally.samples());
}

TEST(NetlistYieldProblem, OptimizerRunsAreIdentical) {
  // Whole-pipeline identity: the optimizer over the deck problem follows
  // the exact trajectory of the built-in problem under the same seed.
  NetlistYieldProblem deck_problem(example_deck());
  const CircuitYieldProblem builtin(make_five_transistor_ota());

  core::MohecoOptions options;
  options.population = 10;
  options.max_generations = 2;
  options.stop_stagnation = 2;
  options.seed = 5;
  options.threads = 4;
  core::MohecoOptimizer deck_opt(deck_problem, options);
  core::MohecoOptimizer builtin_opt(builtin, options);
  const core::MohecoResult a = deck_opt.run_generations(2);
  const core::MohecoResult b = builtin_opt.run_generations(2);
  EXPECT_EQ(a.best.x, b.best.x);
  EXPECT_EQ(a.best.fitness.yield, b.best.fitness.yield);
  EXPECT_EQ(a.best.samples, b.best.samples);
  EXPECT_EQ(a.total_simulations, b.total_simulations);
}

TEST(NetlistYieldProblem, WarmStartBlobRoundTrip) {
  NetlistYieldProblem problem(example_deck());
  const std::vector<double> x = problem.nominal_x();
  const auto cold = problem.open(x);
  const std::vector<double> blob = cold->warm_start_blob();
  ASSERT_FALSE(blob.empty());
  const auto warm = problem.open_warm(x, blob);

  stats::Rng rng(123);
  std::vector<double> xi(problem.noise_dim());
  for (int rep = 0; rep < 5; ++rep) {
    for (double& v : xi) v = rng.normal();
    const mc::SampleResult a = warm->evaluate(xi);
    const mc::SampleResult b = problem.open(x)->evaluate(xi);
    EXPECT_EQ(a.pass, b.pass);
    EXPECT_EQ(a.violation, b.violation);
  }

  // A foreign blob (different design point) must degrade to a cold open,
  // not poison the session.
  std::vector<double> y = x;
  y[0] *= 1.5;
  const auto fallback = problem.open_warm(y, blob);
  const mc::SampleResult a = fallback->evaluate({});
  const mc::SampleResult b = problem.open(y)->evaluate({});
  EXPECT_EQ(a.pass, b.pass);
}

TEST(NetlistYieldProblem, BlobStorePersistsAcrossSchedulers) {
  // The ResultsCache-backed warm-start spill: a second scheduler seeded
  // from the first one's export revives sessions instead of re-running the
  // nominal measurement, with identical estimates.
  NetlistYieldProblem problem(example_deck());
  const std::vector<double> x = problem.nominal_x();
  ThreadPool pool(2);

  mc::EvalScheduler first(pool);
  const double yield_first = mc::reference_yield(problem, x, 200, 11, first);
  const ResultMap exported = first.export_blobs();
  ASSERT_FALSE(exported.empty());

  // Round-trip the snapshot through a ResultsCache file, as the CLI does.
  char dir[] = "/tmp/moheco_blob_test_XXXXXX";
  ASSERT_NE(::mkdtemp(dir), nullptr);
  const ResultsCache cache{std::string(dir)};
  cache.store("blobs", exported);
  const auto loaded = cache.load("blobs");
  ASSERT_TRUE(loaded.has_value());

  mc::EvalScheduler second(pool);
  EXPECT_EQ(second.import_blobs(problem, *loaded), exported.size());
  const double yield_second = mc::reference_yield(problem, x, 200, 11, second);
  EXPECT_EQ(yield_first, yield_second);
  EXPECT_GT(second.warm_opens(), 0);
  EXPECT_EQ(second.session_opens(), second.warm_opens());  // no cold opens

  std::remove((std::string(dir) + "/blobs.txt").c_str());
  ::rmdir(dir);
}

TEST(NetlistYieldProblem, RejectsDecksMissingProbes) {
  const char* no_supply =
      "* t\n"
      ".param w=1e-05 lo=1e-06 hi=1e-04\n"
      "Vdd vdd 0 DC 1.2\n"
      "M1 out vdd 0 0 nm W={w} L=1e-06\n"
      "R1 out vdd 10k\n"
      ".model nm NMOS (VTO=0.3)\n"
      ".probe out out\n";
  EXPECT_THROW(NetlistYieldProblem(spice::parse_deck_string(no_supply)),
               spice::DeckError);

  const char* no_design =
      "* t\n"
      "Vdd vdd 0 DC 1.2\n"
      "M1 out vdd 0 0 nm W=1e-05 L=1e-06\n"
      "R1 out vdd 10k\n"
      ".model nm NMOS (VTO=0.3)\n"
      ".probe out out\n"
      ".probe supply Vdd\n";
  EXPECT_THROW(NetlistYieldProblem(spice::parse_deck_string(no_design)),
               spice::DeckError);

  const char* bad_metric =
      "* t\n"
      ".param w=1e-05 lo=1e-06 hi=1e-04\n"
      "Vdd vdd 0 DC 1.2\n"
      "M1 out vdd 0 0 nm W={w} L=1e-06\n"
      "R1 out vdd 10k\n"
      ".model nm NMOS (VTO=0.3)\n"
      ".spec psrr >= 60\n"
      ".probe out out\n"
      ".probe supply Vdd\n";
  EXPECT_THROW(NetlistYieldProblem(spice::parse_deck_string(bad_metric)),
               spice::DeckError);

  // Transient evaluation without a .probe step card is refused up front.
  EvalOptions transient;
  transient.transient = true;
  EXPECT_THROW(NetlistYieldProblem(example_deck(), transient),
               InvalidArgument);

  // Spec bounds are fixed per problem: an expression that follows the
  // design vector would silently freeze at the nominal sizing, so it is
  // rejected with a diagnostic instead.
  const char* design_dependent_spec =
      "* t\n"
      ".param w=1e-05 lo=1e-06 hi=1e-04\n"
      ".param derived={w*2}\n"
      "Vdd vdd 0 DC 1.2\n"
      "M1 out vdd 0 0 nm W={w} L=1e-06\n"
      "R1 out vdd 10k\n"
      ".model nm NMOS (VTO=0.3)\n"
      ".spec area <= {derived*1e-06}\n"
      ".probe out out\n"
      ".probe supply Vdd\n";
  EXPECT_THROW(
      NetlistYieldProblem(spice::parse_deck_string(design_dependent_spec)),
      spice::DeckError);
}

TEST(DeckTopology, StepProbeEvaluatesPerDesignPoint) {
  // TSTOP/SETTLE expressions referencing design parameters must follow the
  // design vector, not stay frozen at the deck's nominal values.
  const char* deck_text =
      "* step probe\n"
      ".param w=2e-05 lo=1e-06 hi=1e-04\n"
      ".param tau=1e-06 lo=1e-07 hi=1e-05\n"
      ".param f=0.01 lo=0.001 hi=0.1\n"
      "Vdd vdd 0 DC 1.2\n"
      "Vstep in 0 DC 0.6 PULSE(0.6 0.8 1e-07 1e-09 1e-09 1e-05 0)\n"
      "M1 out in 0 0 nm W={w} L=1e-06\n"
      "R1 out vdd 10k\n"
      "CL out 0 1e-12\n"
      ".model nm NMOS (VTO=0.3)\n"
      ".spec settling_time <= 1u\n"
      ".probe out out\n"
      ".probe supply Vdd\n"
      ".probe step Vstep TSTOP={3*tau} SETTLE={f}\n";
  const DeckTopology topology(spice::parse_deck_string(deck_text));
  EXPECT_TRUE(topology.has_step_bench());
  ASSERT_EQ(topology.specs().size(), 0u);
  ASSERT_EQ(topology.transient_specs().size(), 1u);

  const double x1[] = {2e-5, 1e-6, 0.01};
  const double x2[] = {2e-5, 2e-6, 0.05};
  const BuiltCircuit b1 = topology.build(x1, Testbench::kStepBuffer);
  const BuiltCircuit b2 = topology.build(x2, Testbench::kStepBuffer);
  EXPECT_DOUBLE_EQ(b1.step.t_stop, 3e-6);
  EXPECT_DOUBLE_EQ(b2.step.t_stop, 6e-6);
  EXPECT_DOUBLE_EQ(b1.step.settle_frac, 0.01);
  EXPECT_DOUBLE_EQ(b2.step.settle_frac, 0.05);
  EXPECT_DOUBLE_EQ(b1.step.v_step, 0.8 - 0.6);
  EXPECT_DOUBLE_EQ(b1.step.t_delay, 1e-7);
  EXPECT_EQ(b1.step.source, 1);  // Vstep is the second vsource
}

TEST(NetlistYieldProblem, CustomVariationDeck) {
  // Fully custom statistics (no built-in tech): one global vth0 variable +
  // an NMOS mismatch law -> noise_dim = 4*T + 1.
  const char* custom =
      "* custom stats\n"
      ".param w=2e-05 lo=1e-06 hi=1e-04\n"
      "Vdd vdd 0 DC 1.2\n"
      "Vb g 0 DC 0.6\n"
      "M1 out g 0 0 nm W={w} L=1e-06\n"
      "R1 out vdd 10k\n"
      ".model nm NMOS (VTO=0.3)\n"
      ".variation global DVT vth0 0.03 nmos\n"
      ".variation mismatch nmos AVTH=2e-09 ATOX=1e-09\n"
      ".spec power <= 1m\n"
      ".probe out out\n"
      ".probe supply Vdd\n";
  NetlistYieldProblem problem(spice::parse_deck_string(custom));
  EXPECT_EQ(problem.num_design_vars(), 1u);
  EXPECT_EQ(problem.noise_dim(), 4u * 1u + 1u);
  const auto& tech = problem.deck_topology().tech();
  ASSERT_EQ(tech.inter_die.size(), 1u);
  EXPECT_EQ(tech.inter_die[0].name, "DVT");
  EXPECT_EQ(tech.inter_die[0].sigma, 0.03);
  EXPECT_EQ(tech.mismatch_nmos.a_vth, 2e-9);
  EXPECT_EQ(tech.mismatch_pmos.a_vth, 0.0);

  // The problem evaluates end to end through a session.
  const std::vector<double> x = problem.nominal_x();
  stats::Rng rng(9);
  std::vector<double> xi(problem.noise_dim());
  for (double& v : xi) v = rng.normal();
  const mc::SampleResult r = problem.open(x)->evaluate(xi);
  (void)r;  // must not throw; pass/fail depends on the sizing
}

}  // namespace
}  // namespace moheco::circuits

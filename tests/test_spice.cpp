#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "src/spice/ac_solver.hpp"
#include "src/spice/dc_solver.hpp"
#include "src/spice/mosfet.hpp"
#include "src/spice/netlist.hpp"
#include "src/spice/netlist_format.hpp"

namespace moheco::spice {
namespace {

MosModel test_nmos() {
  MosModel m;
  m.vth0 = 0.55;
  m.gamma = 0.55;
  m.phi = 0.8;
  m.lambda = 0.06;
  m.lambda_lref = 1e-6;
  m.u0 = 0.040;
  m.tox = 7.5e-9;
  return m;
}

TEST(Netlist, GroundAliases) {
  Netlist n;
  EXPECT_EQ(n.node("0"), 0);
  EXPECT_EQ(n.node("gnd"), 0);
  EXPECT_EQ(n.node("a"), 1);
  EXPECT_EQ(n.node("a"), 1);
  EXPECT_EQ(n.num_nodes(), 1);
}

TEST(Netlist, RejectsNonPositiveResistance) {
  Netlist n;
  const NodeId a = n.node("a");
  EXPECT_THROW(n.add_resistor("R1", a, 0, 0.0), NetlistError);
  EXPECT_THROW(n.add_resistor("R1", a, 0, -5.0), NetlistError);
}

TEST(Netlist, ValidateFlagsFloatingNode) {
  Netlist n;
  const NodeId a = n.node("a");
  n.node("floating");
  n.add_resistor("R1", a, 0, 1e3);
  EXPECT_THROW(n.validate(), NetlistError);
}

TEST(Dc, ResistorDivider) {
  Netlist n;
  const NodeId vin = n.node("vin");
  const NodeId mid = n.node("mid");
  n.add_vsource("V1", vin, 0, 10.0);
  n.add_resistor("R1", vin, mid, 1e3);
  n.add_resistor("R2", mid, 0, 3e3);
  DcSolver solver(n);
  ASSERT_EQ(solver.solve(DcOptions{}), SolveStatus::kOk);
  EXPECT_NEAR(solver.op().node_voltage[mid], 7.5, 1e-6);
  // Source current: 10V across 4k, flowing out of the + terminal.
  EXPECT_NEAR(std::fabs(solver.op().vsource_current[0]), 10.0 / 4e3, 1e-9);
}

TEST(Dc, CurrentSourceIntoResistor) {
  Netlist n;
  const NodeId a = n.node("a");
  n.add_isource("I1", 0, a, 1e-3);  // pushes 1mA into node a
  n.add_resistor("R1", a, 0, 2e3);
  DcSolver solver(n);
  ASSERT_EQ(solver.solve(DcOptions{}), SolveStatus::kOk);
  EXPECT_NEAR(solver.op().node_voltage[a], 2.0, 1e-6);
}

TEST(Dc, VcvsGain) {
  Netlist n;
  const NodeId in = n.node("in");
  const NodeId out = n.node("out");
  n.add_vsource("V1", in, 0, 0.5);
  n.add_vcvs("E1", out, 0, in, 0, 4.0);
  n.add_resistor("RL", out, 0, 1e3);
  DcSolver solver(n);
  ASSERT_EQ(solver.solve(DcOptions{}), SolveStatus::kOk);
  EXPECT_NEAR(solver.op().node_voltage[out], 2.0, 1e-9);
}

TEST(Dc, VccsIntoLoad) {
  Netlist n;
  const NodeId in = n.node("in");
  const NodeId out = n.node("out");
  n.add_vsource("V1", in, 0, 1.0);
  n.add_vccs("G1", 0, out, in, 0, 2e-3);  // 2mA into out
  n.add_resistor("RL", out, 0, 1e3);
  DcSolver solver(n);
  ASSERT_EQ(solver.solve(DcOptions{}), SolveStatus::kOk);
  // gmin (1e-12 S) shunts a few nA; allow for it.
  EXPECT_NEAR(solver.op().node_voltage[out], 2.0, 1e-6);
}

TEST(Dc, InductorIsShort) {
  Netlist n;
  const NodeId a = n.node("a");
  const NodeId b = n.node("b");
  n.add_vsource("V1", a, 0, 3.0);
  n.add_inductor("L1", a, b, 1e9);
  n.add_resistor("R1", b, 0, 1e3);
  DcSolver solver(n);
  ASSERT_EQ(solver.solve(DcOptions{}), SolveStatus::kOk);
  EXPECT_NEAR(solver.op().node_voltage[b], 3.0, 1e-6);
}

TEST(MosModel, SaturationSquareLaw) {
  MosModel m = test_nmos();
  m.lambda = 0.0;  // no CLM for the clean square-law check
  const double w = 10e-6, l = 1e-6;
  const MosEval e = eval_mos(m, w, l, 1.0, 2.0, 0.0);
  EXPECT_TRUE(e.saturated);
  const double beta = m.u0 * m.cox() * w / l;
  const double vgst = 1.0 - m.vth0;
  // Smooth overdrive approaches vgst in strong inversion.
  EXPECT_NEAR(e.vdsat, vgst, 0.01);
  EXPECT_NEAR(e.id, 0.5 * beta * vgst * vgst, 0.05 * e.id);
  // gm = beta*vgst in saturation.
  EXPECT_NEAR(e.gm, beta * vgst, 0.05 * e.gm);
}

TEST(MosModel, CutoffCurrentIsTiny) {
  const MosEval e = eval_mos(test_nmos(), 10e-6, 1e-6, 0.2, 1.0, 0.0);
  EXPECT_LT(e.id, 1e-9);
  EXPECT_GT(e.id, 0.0);  // smooth subthreshold, not hard zero
}

TEST(MosModel, TriodeAndSaturationContinuity) {
  const MosModel m = test_nmos();
  const double w = 10e-6, l = 1e-6;
  const double vgs = 1.2;
  const MosEval ref = eval_mos(m, w, l, vgs, 3.0, 0.0);
  const double vdsat = ref.vdsat;
  const MosEval below = eval_mos(m, w, l, vgs, vdsat - 1e-7, 0.0);
  const MosEval above = eval_mos(m, w, l, vgs, vdsat + 1e-7, 0.0);
  EXPECT_NEAR(below.id, above.id, 1e-9 * std::max(1.0, above.id));
  EXPECT_NEAR(below.gds, above.gds, 1e-3 * std::max(above.gds, 1e-12));
}

TEST(MosModel, MonotonicInVgs) {
  const MosModel m = test_nmos();
  double prev = -1.0;
  for (double vgs = 0.0; vgs <= 2.5; vgs += 0.05) {
    const MosEval e = eval_mos(m, 10e-6, 1e-6, vgs, 1.5, 0.0);
    EXPECT_GT(e.id, prev);
    EXPECT_GE(e.gm, 0.0);
    prev = e.id;
  }
}

TEST(MosModel, BodyEffectRaisesVth) {
  const MosModel m = test_nmos();
  const MosEval no_bias = eval_mos(m, 10e-6, 1e-6, 1.2, 1.5, 0.0);
  const MosEval reverse = eval_mos(m, 10e-6, 1e-6, 1.2, 1.5, -1.0);
  EXPECT_GT(reverse.vth, no_bias.vth);
  EXPECT_LT(reverse.id, no_bias.id);
  EXPECT_GT(reverse.gmb, 0.0);
}

TEST(MosModel, ReverseVdsAntisymmetry) {
  const MosModel m = test_nmos();
  // With vds < 0 the device conducts backwards (drain acts as source).
  const MosEval fwd = eval_mos(m, 10e-6, 1e-6, 1.5, 0.05, 0.0);
  const MosEval rev = eval_mos(m, 10e-6, 1e-6, 1.45, -0.05, -0.05);
  EXPECT_LT(rev.id, 0.0);
  // Deep-triode conduction is approximately antisymmetric.
  EXPECT_NEAR(-rev.id, fwd.id, 0.15 * fwd.id);
}

TEST(Dc, NmosDiodeOperatingPoint) {
  Netlist n;
  const NodeId d = n.node("d");
  n.add_isource("I1", 0, d, 100e-6);
  MosModel m = test_nmos();
  n.add_mosfet("M1", d, d, 0, 0, false, 20e-6, 1e-6, m);
  DcSolver solver(n);
  ASSERT_EQ(solver.solve(DcOptions{}), SolveStatus::kOk);
  const double vgs = solver.op().node_voltage[d];
  EXPECT_GT(vgs, m.vth0);
  EXPECT_LT(vgs, 1.2);
  EXPECT_NEAR(solver.op().mosfets[0].eval.id, 100e-6, 1e-8);
  EXPECT_TRUE(solver.op().mosfets[0].eval.saturated);
}

TEST(Dc, CurrentMirrorRatio) {
  Netlist n;
  const NodeId vdd = n.node("vdd");
  const NodeId g = n.node("g");
  const NodeId o = n.node("o");
  n.add_vsource("Vdd", vdd, 0, 3.3);
  n.add_isource("I1", vdd, g, 50e-6);
  const MosModel m = test_nmos();
  n.add_mosfet("M1", g, g, 0, 0, false, 10e-6, 1e-6, m);
  n.add_mosfet("M2", o, g, 0, 0, false, 30e-6, 1e-6, m);
  n.add_resistor("RL", vdd, o, 10e3);
  DcSolver solver(n);
  ASSERT_EQ(solver.solve(DcOptions{}), SolveStatus::kOk);
  const double i_out = solver.op().mosfets[1].eval.id;
  // 3x mirror, with some lambda error allowed.
  EXPECT_NEAR(i_out, 150e-6, 15e-6);
}

TEST(Ac, RcLowpassPole) {
  Netlist n;
  const NodeId in = n.node("in");
  const NodeId out = n.node("out");
  n.add_vsource("V1", in, 0, 0.0, 1.0);
  n.add_resistor("R1", in, out, 1e3);
  n.add_capacitor("C1", out, 0, 1e-9);  // fc = 159.2 kHz
  DcSolver dc(n);
  ASSERT_EQ(dc.solve(DcOptions{}), SolveStatus::kOk);
  AcSolver ac(n, dc.op());
  const double fc = 1.0 / (2.0 * M_PI * 1e3 * 1e-9);
  ASSERT_EQ(ac.solve(fc), SolveStatus::kOk);
  const std::complex<double> h = ac.voltage(out);
  EXPECT_NEAR(std::abs(h), 1.0 / std::sqrt(2.0), 1e-6);
  EXPECT_NEAR(std::arg(h) * 180.0 / M_PI, -45.0, 1e-3);
  // Deep in the stopband the slope is -20 dB/dec.
  ASSERT_EQ(ac.solve(100.0 * fc), SolveStatus::kOk);
  EXPECT_NEAR(std::abs(ac.voltage(out)), 1.0 / 100.0, 2e-3);
}

TEST(Ac, InductorOpensAtHighFrequency) {
  Netlist n;
  const NodeId in = n.node("in");
  const NodeId out = n.node("out");
  n.add_vsource("V1", in, 0, 1.0, 1.0);
  n.add_inductor("L1", in, out, 1e9);
  n.add_resistor("R1", out, 0, 1e3);
  DcSolver dc(n);
  ASSERT_EQ(dc.solve(DcOptions{}), SolveStatus::kOk);
  // DC: inductor is a short.
  EXPECT_NEAR(dc.op().node_voltage[out], 1.0, 1e-6);
  AcSolver ac(n, dc.op());
  ASSERT_EQ(ac.solve(1.0), SolveStatus::kOk);
  EXPECT_LT(std::abs(ac.voltage(out)), 1e-3);
}

TEST(Ac, CommonSourceGainMatchesGmRo) {
  Netlist n;
  const NodeId vdd = n.node("vdd");
  const NodeId g = n.node("g");
  const NodeId d = n.node("d");
  n.add_vsource("Vdd", vdd, 0, 3.3);
  n.add_vsource("Vg", g, 0, 1.0, 1.0);
  const MosModel m = test_nmos();
  n.add_mosfet("M1", d, g, 0, 0, false, 10e-6, 1e-6, m);
  n.add_resistor("RD", vdd, d, 10e3);
  DcSolver dc(n);
  ASSERT_EQ(dc.solve(DcOptions{}), SolveStatus::kOk);
  ASSERT_TRUE(dc.op().mosfets[0].eval.saturated);
  const double gm = dc.op().mosfets[0].eval.gm;
  const double gds = dc.op().mosfets[0].eval.gds;
  AcSolver ac(n, dc.op());
  ASSERT_EQ(ac.solve(100.0), SolveStatus::kOk);
  const double expected = gm / (gds + 1.0 / 10e3);
  EXPECT_NEAR(std::abs(ac.voltage(d)), expected, 0.01 * expected);
}

TEST(Dc, GminSteppingRescuesColdStart) {
  // A two-stage-like stack that is hard from a flat start.
  Netlist n;
  const NodeId vdd = n.node("vdd");
  const NodeId a = n.node("a");
  const NodeId b = n.node("b");
  n.add_vsource("Vdd", vdd, 0, 3.3);
  const MosModel m = test_nmos();
  n.add_mosfet("M1", a, a, 0, 0, false, 10e-6, 1e-6, m);
  n.add_mosfet("M2", b, a, 0, 0, false, 10e-6, 1e-6, m);
  n.add_isource("I1", vdd, a, 20e-6);
  n.add_resistor("R1", vdd, b, 50e3);
  DcOptions options;
  DcSolver solver(n);
  ASSERT_EQ(solver.solve(options), SolveStatus::kOk);
  EXPECT_GT(solver.op().node_voltage[a], 0.5);
}

TEST(NetlistFormat, DeckContainsEveryDevice) {
  Netlist n;
  const NodeId a = n.node("a");
  const NodeId b = n.node("b");
  n.add_vsource("V1", a, 0, 1.5, 0.5);
  n.add_resistor("R1", a, b, 2.2e3);
  n.add_capacitor("C1", b, 0, 1e-12);
  n.add_inductor("L1", a, b, 1e-3);
  n.add_isource("I1", 0, b, 1e-6);
  n.add_vcvs("E1", b, 0, a, 0, 3.0);
  n.add_vccs("G1", b, 0, a, 0, 1e-3);
  n.add_mosfet("M1", b, a, 0, 0, false, 1e-5, 1e-6, test_nmos());
  const std::string deck = to_spice_deck(n, "unit test deck");
  for (const char* token :
       {"* unit test deck", "V1 a 0 DC 1.5 AC 0.5", "R1 a b 2200",
        "C1 b 0 1e-12", "L1 a b 0.001", "I1 0 b DC 1e-06", "E1 b 0 a 0 3",
        "G1 b 0 a 0 0.001", "M1 b a 0 0 model_M1 W=1e-05 L=1e-06",
        ".model model_M1 NMOS", ".end"}) {
    EXPECT_NE(deck.find(token), std::string::npos) << token;
  }
}

TEST(NetlistFormat, EmitsTransientWaveforms) {
  Netlist n;
  const NodeId a = n.node("a");
  const NodeId b = n.node("b");
  n.add_pulse_vsource("Vp", a, 0, 0.0, 3.3, 1e-9, 2e-9, 3e-9, 1e-6, 2e-6);
  n.add_pwl_vsource("Vw", b, 0, {{0.0, 1.0}, {1e-6, 2.5}});
  n.add_resistor("R1", a, b, 1e3);
  const std::string deck = to_spice_deck(n, "tran sources");
  EXPECT_NE(deck.find("Vp a 0 DC 0 PULSE(0 3.3 1e-09 2e-09 3e-09 1e-06 "
                      "2e-06)"),
            std::string::npos)
      << deck;
  EXPECT_NE(deck.find("Vw b 0 DC 1 PWL(0 1 1e-06 2.5)"), std::string::npos)
      << deck;
}

TEST(NetlistFormat, GoldenDeckRoundTrip) {
  // Full-deck golden comparison: the exported deck is the cross-check
  // interface against external simulators, so its exact shape is pinned.
  // Any intentional format change must update this golden text.
  Netlist n;
  const NodeId in = n.node("in");
  const NodeId out = n.node("out");
  n.add_pulse_vsource("Vin", in, 0, 0.5, 1.5, 1e-8, 1e-9, 1e-9, 5e-7);
  n.add_resistor("R1", in, out, 1e3);
  n.add_capacitor("CL", out, 0, 2e-12);
  MosModel m = test_nmos();
  n.add_mosfet("M1", out, in, 0, 0, false, 1e-5, 1e-6, m);
  const std::string golden =
      "* golden\n"
      ".nodes in out\n"
      "R1 in out 1000\n"
      "CL out 0 2e-12\n"
      "Vin in 0 DC 0.5 PULSE(0.5 1.5 1e-08 1e-09 1e-09 5e-07 0)\n"
      "M1 out in 0 0 model_M1 W=1e-05 L=1e-06\n"
      ".model model_M1 NMOS (LEVEL=1 VTO=0.55 GAMMA=0.55 PHI=0.8 "
      "LAMBDA=0.06 LREF=1e-06 TOX=7.5e-09 UO=400 U0=0.04 LD=0 WD=0 "
      "NSUB=1.5 LDIFF=5e-07 CGSO=2e-10 CGDO=2e-10 CJ=9e-04 CJSW=2.5e-10)\n"
      ".end\n";
  EXPECT_EQ(to_spice_deck(n, "golden"), golden);
}

TEST(NetlistFormat, PmosVtoIsNegative) {
  Netlist n;
  const NodeId vdd = n.node("vdd");
  n.add_vsource("Vdd", vdd, 0, 3.3);
  MosModel m = test_nmos();
  m.vth0 = 0.6;
  n.add_mosfet("M1", 0, 0, vdd, vdd, true, 1e-5, 1e-6, m);
  const std::string deck = to_spice_deck(n, "pmos");
  EXPECT_NE(deck.find("PMOS (LEVEL=1 VTO=-0.6"), std::string::npos) << deck;
}

}  // namespace
}  // namespace moheco::spice

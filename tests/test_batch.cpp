// Batched (SoA) evaluation path: per-lane results must be bit-identical to
// the scalar path at every layer -- SparseLuBatch vs scalar refactor/solve,
// MnaSystem batch replay vs scalar slot replay, circuit Session
// evaluate_batch vs per-lane evaluate(), the examples/five_t_ota.cir deck
// twin, and EvalScheduler yield tallies across mixed batch widths and
// thread counts.  Batch width is a throughput knob, never an accuracy knob
// (the yield_problem.hpp Session contract), so every comparison here is
// exact equality, not tolerance.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <cstring>
#include <limits>
#include <memory>
#include <span>
#include <vector>

#include "src/circuits/circuit_yield.hpp"
#include "src/circuits/netlist_problem.hpp"
#include "src/circuits/topology.hpp"
#include "src/common/parallel.hpp"
#include "src/linalg/sparse.hpp"
#include "src/mc/candidate_yield.hpp"
#include "src/mc/eval_scheduler.hpp"
#include "src/spice/deck_parser.hpp"
#include "src/spice/dc_solver.hpp"
#include "src/spice/mna.hpp"
#include "src/spice/netlist.hpp"
#include "src/spice/tran_solver.hpp"
#include "src/stats/rng.hpp"

namespace moheco {
namespace {

// ---------------------------------------------------------------------------
// Layer 1: SparseLuBatch vs scalar SparseLuSolver on random patterns.
// ---------------------------------------------------------------------------

/// Random square pattern with a full diagonal (so the fixed pivot sequence
/// survives value perturbation) plus random off-diagonal entries.
linalg::SparseMatrix<double> random_pattern(std::size_t n, int extra,
                                            std::uint64_t seed,
                                            std::vector<std::uint32_t>* slots) {
  stats::Rng rng(seed);
  linalg::SparseBuilder builder(n);
  for (std::size_t i = 0; i < n; ++i) builder.add(static_cast<int>(i), static_cast<int>(i));
  for (int e = 0; e < extra; ++e) {
    const int r = static_cast<int>(rng.uniform() * static_cast<double>(n)) %
                  static_cast<int>(n);
    const int c = static_cast<int>(rng.uniform() * static_cast<double>(n)) %
                  static_cast<int>(n);
    builder.add(r, c);
  }
  return builder.finalize<double>(slots);
}

/// Diagonally-dominant values for lane `lane`: diagonal ~n + jitter, small
/// off-diagonals, deterministic per (slot, lane).
template <typename Fill>
void fill_values(linalg::SparseMatrix<double>& a, Fill&& fill) {
  for (std::size_t c = 0; c < a.size(); ++c) {
    for (int p = a.col_ptr()[c]; p < a.col_ptr()[c + 1]; ++p) {
      a.value(static_cast<std::size_t>(p)) =
          fill(static_cast<std::size_t>(a.row_idx()[p]), c,
               static_cast<std::size_t>(p));
    }
  }
}

bool bits_equal(std::span<const double> a, std::span<const double> b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

/// Runs `lanes` perturbed copies of one pattern through SparseLuBatch and
/// checks every lane's solution is bit-identical to a scalar
/// refactor()+solve() of the same values.  The RHS contains exact zeros so
/// the substitution kernels exercise their zero-skip / signed-zero paths.
void check_batch_lanes(std::size_t n, int extra, std::size_t lanes,
                       std::uint64_t seed) {
  linalg::SparseMatrix<double> a = random_pattern(n, extra, seed, nullptr);
  stats::Rng rng(stats::derive_seed(seed, 0xF111, lanes));
  auto lane_value = [&](std::size_t lane) {
    return [lane, seed](std::size_t r, std::size_t c, std::size_t slot) {
      std::uint64_t z = (slot * 0x9E3779B97F4A7C15ull) ^
                        (lane * 0xBF58476D1CE4E5B9ull) ^ seed;
      z ^= z >> 29;
      z *= 0x2545F4914F6CDD1Dull;
      const double u =
          static_cast<double>(z >> 11) * (1.0 / 9007199254740992.0);
      return r == c ? static_cast<double>(r + c) * 0.0 + 8.0 + u
                    : 0.25 * (2.0 * u - 1.0);
    };
  };
  (void)rng;

  // Host analysis from lane 0's values (pattern-level work).
  fill_values(a, lane_value(0));
  linalg::SparseLuSolver<double> host;
  ASSERT_TRUE(host.factor(a));

  // SoA lanes + per-lane scalar references.
  const std::size_t nnz = a.nnz();
  std::vector<double> soa(nnz * lanes);
  std::vector<double> rhs_soa(n * lanes);
  std::vector<std::vector<double>> scalar_x(lanes);
  for (std::size_t l = 0; l < lanes; ++l) {
    fill_values(a, lane_value(l));
    for (std::size_t slot = 0; slot < nnz; ++slot) {
      soa[slot * lanes + l] = a.values()[slot];
    }
    std::vector<double> b(n, 0.0);  // mostly-zero rhs: zero-skip coverage
    b[0] = 1.0 + 0.125 * static_cast<double>(l);
    b[n - 1] = -0.5;
    for (std::size_t i = 0; i < n; ++i) rhs_soa[i * lanes + l] = b[i];
    ASSERT_TRUE(host.refactor(a));
    host.solve(b);
    scalar_x[l] = std::move(b);
  }

  // Re-point the host's numeric factorization at lane 0 (the batch only
  // consumes the symbolic side, but keep the state coherent regardless).
  fill_values(a, lane_value(0));
  ASSERT_TRUE(host.refactor(a));

  linalg::SparseLuBatch<double> batch;
  ASSERT_TRUE(batch.refactor(host, a, soa, lanes));
  batch.solve(rhs_soa);
  for (std::size_t l = 0; l < lanes; ++l) {
    std::vector<double> x(n);
    for (std::size_t i = 0; i < n; ++i) x[i] = rhs_soa[i * lanes + l];
    EXPECT_TRUE(bits_equal(x, scalar_x[l]))
        << "lane " << l << " of " << lanes << " differs from scalar";
  }
}

TEST(SparseLuBatchTest, LanesMatchScalarBitwise) {
  // 2/4/8 hit the compile-time kernels (4/8 dispatch to the wide ISA TUs on
  // capable hosts); 3, 5, 7 and 16 hit the any-width fallback (KC = 0); 1
  // hits the single-lane kernel.
  for (std::size_t lanes : {1u, 2u, 3u, 4u, 5u, 7u, 8u, 16u}) {
    check_batch_lanes(/*n=*/60, /*extra=*/240, lanes, /*seed=*/0xB17C0DE + lanes);
  }
}

TEST(SparseLuBatchTest, ComplexLanesMatchScalarBitwise) {
  const std::size_t n = 40;
  std::vector<std::uint32_t> slots;
  linalg::SparseMatrix<double> proto = random_pattern(n, 160, 99, nullptr);
  // Rebuild the same pattern as complex.
  linalg::SparseBuilder builder(n);
  for (std::size_t c = 0; c < n; ++c) {
    for (int p = proto.col_ptr()[c]; p < proto.col_ptr()[c + 1]; ++p) {
      builder.add(proto.row_idx()[p], static_cast<int>(c));
    }
  }
  linalg::SparseMatrix<std::complex<double>> a =
      builder.finalize<std::complex<double>>(&slots);

  auto lane_fill = [&](std::size_t lane) {
    for (std::size_t c = 0; c < n; ++c) {
      for (int p = a.col_ptr()[c]; p < a.col_ptr()[c + 1]; ++p) {
        const auto r = static_cast<std::size_t>(a.row_idx()[p]);
        std::uint64_t z = (static_cast<std::uint64_t>(p) * 0x9E3779B97F4A7C15ull) ^
                          ((lane + 1) * 0xD1B54A32D192ED03ull);
        z ^= z >> 27;
        z *= 0x2545F4914F6CDD1Dull;
        const double u =
            static_cast<double>(z >> 11) * (1.0 / 9007199254740992.0);
        a.value(static_cast<std::size_t>(p)) =
            r == c ? std::complex<double>(6.0 + u, 0.5 * u)
                   : std::complex<double>(0.2 * (2.0 * u - 1.0), 0.1 * u);
      }
    }
  };

  lane_fill(0);
  linalg::SparseLuSolver<std::complex<double>> host;
  ASSERT_TRUE(host.factor(a));

  for (std::size_t lanes : {2u, 4u, 7u, 8u}) {
    const std::size_t nnz = a.nnz();
    std::vector<std::complex<double>> soa(nnz * lanes);
    std::vector<std::complex<double>> rhs_soa(n * lanes);
    std::vector<std::vector<std::complex<double>>> scalar_x(lanes);
    for (std::size_t l = 0; l < lanes; ++l) {
      lane_fill(l);
      for (std::size_t slot = 0; slot < nnz; ++slot) {
        soa[slot * lanes + l] = a.values()[slot];
      }
      std::vector<std::complex<double>> b(n);
      b[1] = {1.0, -0.25 * static_cast<double>(l)};
      for (std::size_t i = 0; i < n; ++i) rhs_soa[i * lanes + l] = b[i];
      ASSERT_TRUE(host.refactor(a));
      host.solve(b);
      scalar_x[l] = std::move(b);
    }
    lane_fill(0);
    ASSERT_TRUE(host.refactor(a));

    linalg::SparseLuBatch<std::complex<double>> batch;
    ASSERT_TRUE(batch.refactor(host, a, soa, lanes));
    batch.solve(rhs_soa);
    for (std::size_t l = 0; l < lanes; ++l) {
      for (std::size_t i = 0; i < n; ++i) {
        const std::complex<double> got = rhs_soa[i * lanes + l];
        const std::complex<double> want = scalar_x[l][i];
        ASSERT_EQ(std::memcmp(&got, &want, sizeof(got)), 0)
            << "lanes=" << lanes << " lane=" << l << " i=" << i;
      }
    }
  }
}

TEST(SparseLuBatchTest, RefusesUnanalyzedHostAndSurvivesBreakdown) {
  linalg::SparseMatrix<double> a = random_pattern(20, 60, 7, nullptr);
  fill_values(a, [](std::size_t r, std::size_t c, std::size_t) {
    return r == c ? 4.0 : 0.1;
  });
  linalg::SparseLuSolver<double> host;
  linalg::SparseLuBatch<double> batch;
  std::vector<double> soa(a.nnz() * 2, 1.0);
  EXPECT_FALSE(batch.refactor(host, a, soa, 2));  // no analysis yet

  ASSERT_TRUE(host.factor(a));
  // Lane 1 is singular (all zeros): its replayed pivot collapses, so the
  // whole batch must report breakdown without touching the host.
  std::vector<double> mixed(a.nnz() * 2, 0.0);
  for (std::size_t slot = 0; slot < a.nnz(); ++slot) {
    mixed[slot * 2] = a.values()[slot];
  }
  const long long refactors_before = host.refactorizations();
  EXPECT_FALSE(batch.refactor(host, a, mixed, 2));
  EXPECT_EQ(host.refactorizations(), refactors_before);
  EXPECT_TRUE(host.refactor(a));  // host factorization still healthy
}

TEST(SparseLuBatchTest, NaNPoisonedLaneTriggersBreakdownNotContamination) {
  // Matrix-value NaNs: the poisoned lane's column maxima go non-finite, so
  // refactor() must report breakdown (all-or-nothing, like the scalar
  // solver) without touching the host -- NaNs never become a silently-wrong
  // neighbor lane.
  linalg::SparseMatrix<double> a = random_pattern(40, 160, 21, nullptr);
  fill_values(a, [](std::size_t r, std::size_t c, std::size_t slot) {
    return r == c ? 6.0 + 0.01 * static_cast<double>(slot % 7)
                  : 0.2 - 0.01 * static_cast<double>(slot % 5);
  });
  linalg::SparseLuSolver<double> host;
  ASSERT_TRUE(host.factor(a));
  for (std::size_t lanes : {4u, 8u}) {
    std::vector<double> soa(a.nnz() * lanes);
    for (std::size_t slot = 0; slot < a.nnz(); ++slot) {
      for (std::size_t l = 0; l < lanes; ++l) {
        soa[slot * lanes + l] = a.values()[slot] * (1.0 + 0.01 * static_cast<double>(l));
      }
    }
    // Poison one mid-batch lane's values.
    const std::size_t bad = lanes / 2;
    for (std::size_t slot = 0; slot < a.nnz(); ++slot) {
      soa[slot * lanes + bad] = std::numeric_limits<double>::quiet_NaN();
    }
    linalg::SparseLuBatch<double> batch;
    EXPECT_FALSE(batch.refactor(host, a, soa, lanes)) << "lanes=" << lanes;
    EXPECT_TRUE(host.refactor(a));  // host factorization untouched
  }
}

TEST(SparseLuBatchTest, NaNRhsLaneDoesNotContaminateNeighbors) {
  // RHS NaNs flow through the substitution kernels: the poisoned lane's
  // solution is what the scalar solve of that NaN rhs produces, and every
  // other lane stays bit-identical to its scalar solve at all widths.
  const std::size_t n = 50;
  linalg::SparseMatrix<double> a = random_pattern(n, 200, 33, nullptr);
  fill_values(a, [](std::size_t r, std::size_t c, std::size_t slot) {
    return r == c ? 7.0 + 0.02 * static_cast<double>(slot % 9)
                  : 0.15 - 0.01 * static_cast<double>(slot % 4);
  });
  linalg::SparseLuSolver<double> host;
  ASSERT_TRUE(host.factor(a));
  for (std::size_t lanes : {4u, 8u}) {
    const std::size_t bad = 1;
    std::vector<double> soa(a.nnz() * lanes);
    for (std::size_t slot = 0; slot < a.nnz(); ++slot) {
      for (std::size_t l = 0; l < lanes; ++l) {
        soa[slot * lanes + l] = a.values()[slot];
      }
    }
    std::vector<double> rhs_soa(n * lanes, 0.0);
    std::vector<std::vector<double>> scalar_x(lanes);
    for (std::size_t l = 0; l < lanes; ++l) {
      std::vector<double> b(n, 0.0);
      b[0] = 1.0 + static_cast<double>(l);
      b[3] = l == bad ? std::numeric_limits<double>::quiet_NaN() : -0.25;
      for (std::size_t i = 0; i < n; ++i) rhs_soa[i * lanes + l] = b[i];
      host.solve(b);
      scalar_x[l] = std::move(b);
    }
    linalg::SparseLuBatch<double> batch;
    ASSERT_TRUE(batch.refactor(host, a, soa, lanes));
    batch.solve(rhs_soa);
    for (std::size_t l = 0; l < lanes; ++l) {
      for (std::size_t i = 0; i < n; ++i) {
        const double got = rhs_soa[i * lanes + l];
        const double want = scalar_x[l][i];
        if (std::isnan(want)) {
          EXPECT_TRUE(std::isnan(got)) << "lanes=" << lanes << " l=" << l;
        } else {
          ASSERT_EQ(std::memcmp(&got, &want, sizeof(got)), 0)
              << "lanes=" << lanes << " l=" << l << " i=" << i;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Layer 2: MnaSystem batch replay vs scalar slot replay.
// ---------------------------------------------------------------------------

/// Small resistor-grid stamp sequence with per-(sample, edge) perturbed
/// conductances; identical order every assembly, as slot replay requires.
struct GridStamp {
  int side;
  std::size_t n;
  std::vector<std::pair<int, int>> edges;

  explicit GridStamp(int s) : side(s), n(static_cast<std::size_t>(s) * s) {
    for (int i = 0; i < s; ++i) {
      for (int j = 0; j < s; ++j) {
        const int node = i * s + j;
        if (j + 1 < s) edges.push_back({node, node + 1});
        if (i + 1 < s) edges.push_back({node, node + s});
      }
    }
  }

  void stamp(spice::MnaSystem<double>& sys, std::uint64_t sample) const {
    for (std::size_t e = 0; e < edges.size(); ++e) {
      std::uint64_t z = (sample * 0x9E3779B97F4A7C15ull) ^
                        (e * 0xBF58476D1CE4E5B9ull);
      z ^= z >> 30;
      z *= 0x2545F4914F6CDD1Dull;
      const double u =
          static_cast<double>(z >> 11) * (1.0 / 9007199254740992.0);
      const double g = 1e-3 * (1.0 + 0.1 * (2.0 * u - 1.0));
      const auto [a, b] = edges[e];
      sys.add(a, a, g);
      sys.add(b, b, g);
      sys.add(a, b, -g);
      sys.add(b, a, -g);
    }
    for (std::size_t i = 0; i < n; ++i) {
      sys.add(static_cast<int>(i), static_cast<int>(i), 1e-9);
    }
    sys.rhs_add(0, 1.0);
    sys.rhs_add(static_cast<int>(n) - 1, -0.5);
  }
};

TEST(MnaBatchTest, BatchReplayMatchesScalarBitwise) {
  const GridStamp grid(9);
  spice::MnaSystem<double> sys;
  sys.reset(grid.n, spice::SolverBackend::kSparse);
  EXPECT_FALSE(sys.batch_ready());  // no pattern captured yet

  // Cold pass: capture the pattern and the symbolic analysis.
  sys.begin_assembly();
  grid.stamp(sys, 0);
  sys.end_assembly();
  std::vector<double> x0 = sys.rhs();
  ASSERT_TRUE(sys.factor());
  sys.solve(x0);
  ASSERT_TRUE(sys.batch_ready());

  const std::uint64_t samples = 12;
  std::vector<std::vector<double>> scalar;
  for (std::uint64_t s = 1; s <= samples; ++s) {
    sys.begin_assembly();
    grid.stamp(sys, s);
    sys.end_assembly();
    std::vector<double> x = sys.rhs();
    ASSERT_TRUE(sys.factor());
    sys.solve(x);
    scalar.push_back(std::move(x));
  }

  for (std::size_t k : {2u, 3u, 4u, 8u}) {
    std::vector<std::vector<double>> batched;
    for (std::uint64_t s = 1; s <= samples; s += k) {
      const std::size_t lanes = static_cast<std::size_t>(
          std::min<std::uint64_t>(k, samples + 1 - s));
      sys.begin_batch(lanes);
      for (std::size_t l = 0; l < lanes; ++l) {
        sys.begin_lane(l);
        grid.stamp(sys, s + l);
        sys.end_lane();
      }
      ASSERT_TRUE(sys.factor_batch());
      std::vector<double> xb = sys.batch_rhs();
      sys.solve_batch(xb);
      sys.end_batch();
      for (std::size_t l = 0; l < lanes; ++l) {
        std::vector<double> x(grid.n);
        for (std::size_t i = 0; i < grid.n; ++i) x[i] = xb[i * lanes + l];
        batched.push_back(std::move(x));
      }
    }
    ASSERT_EQ(batched.size(), scalar.size());
    for (std::size_t s = 0; s < scalar.size(); ++s) {
      EXPECT_TRUE(bits_equal(batched[s], scalar[s]))
          << "K=" << k << " sample " << s;
    }
  }

  // Scalar mode still works after batches and stays bit-stable.
  sys.begin_assembly();
  grid.stamp(sys, 0);
  sys.end_assembly();
  std::vector<double> x0_again = sys.rhs();
  ASSERT_TRUE(sys.factor());
  sys.solve(x0_again);
  EXPECT_TRUE(bits_equal(x0, x0_again));
}

TEST(MnaBatchTest, DenseBackendNeverBatchReady) {
  const GridStamp grid(3);
  spice::MnaSystem<double> sys;
  sys.reset(grid.n, spice::SolverBackend::kDense);
  sys.begin_assembly();
  grid.stamp(sys, 0);
  sys.end_assembly();
  std::vector<double> x = sys.rhs();
  ASSERT_TRUE(sys.factor());
  sys.solve(x);
  EXPECT_FALSE(sys.batch_ready());
  // kAuto resolves dense below the threshold, so it must not batch either.
  spice::MnaSystem<double> auto_sys;
  auto_sys.reset(grid.n, spice::SolverBackend::kAuto);
  EXPECT_FALSE(auto_sys.is_sparse());
}

// ---------------------------------------------------------------------------
// Layer 2.5: TranSolver::run_batch -- lockstep batched transient vs scalar
// run(), including the mid-transient pivot-breakdown demotion path.
// ---------------------------------------------------------------------------

/// Pulse-driven RC ladder; per-lane R/C perturbation through the mutable
/// netlist accessors (the same in-place mechanism process sampling uses).
spice::Netlist rc_ladder(int stages) {
  spice::Netlist n;
  spice::NodeId prev = n.node("in");
  n.add_pulse_vsource("Vin", prev, 0, 0.0, 1.0, 50e-9, 5e-9, 5e-9, 1.0);
  for (int s = 0; s < stages; ++s) {
    const spice::NodeId node = n.node("n" + std::to_string(s));
    n.add_resistor("R" + std::to_string(s), prev, node, 1e3);
    n.add_capacitor("C" + std::to_string(s), node, 0, 1e-12);
    prev = node;
  }
  return n;
}

TEST(TranBatchTest, RunBatchMatchesScalarBitwise) {
  const int stages = 12;
  spice::Netlist n = rc_ladder(stages);
  auto perturb = [&](std::size_t lane) {
    for (int s = 0; s < stages; ++s) {
      n.resistor(s).resistance =
          1e3 * (1.0 + 0.07 * static_cast<double>((lane * 7 + static_cast<std::size_t>(s)) % 5));
      n.capacitor(s).capacitance = 1e-12 * (1.0 + 0.05 * static_cast<double>(lane % 3));
    }
  };
  spice::TranSolver tran(n, spice::SolverBackend::kSparse);
  spice::DcSolver dc(n, spice::SolverBackend::kSparse);
  spice::TranOptions options;
  options.t_stop = 400e-9;

  for (std::size_t lanes : {2u, 4u, 8u}) {
    // Scalar references: per-lane step counts genuinely diverge here (each
    // lane's LTE controller sees different dynamics), so the lockstep loop
    // has to freeze early finishers while the rest keep stepping.
    std::vector<std::vector<double>> ops(lanes), ref_time(lanes), ref_v(lanes);
    const std::size_t stride = static_cast<std::size_t>(n.num_nodes()) + 1;
    for (std::size_t l = 0; l < lanes; ++l) {
      perturb(l);
      std::vector<double> sol(dc.layout().size(), 0.0);
      ASSERT_EQ(dc.solve({}, &sol), spice::SolveStatus::kOk);
      ops[l] = sol;
      ASSERT_EQ(tran.run(options, &ops[l]), spice::SolveStatus::kOk);
      ref_time[l] = tran.time();
      ref_v[l].resize(tran.num_points() * stride);
      for (std::size_t k = 0; k < tran.num_points(); ++k) {
        for (std::size_t node = 0; node < stride; ++node) {
          ref_v[l][k * stride + node] =
              tran.voltage(k, static_cast<spice::NodeId>(node));
        }
      }
    }
    std::vector<spice::TranLaneResult> results;
    ASSERT_TRUE(tran.run_batch(options, lanes, [&](std::size_t l) { perturb(l); },
                               ops, &results))
        << "K=" << lanes << ": batched transient did not engage";
    for (std::size_t l = 0; l < lanes; ++l) {
      EXPECT_EQ(results[l].status, spice::SolveStatus::kOk);
      EXPECT_TRUE(bits_equal(results[l].time, ref_time[l]))
          << "K=" << lanes << " lane " << l << " time axis differs";
      EXPECT_TRUE(bits_equal(results[l].node_v, ref_v[l]))
          << "K=" << lanes << " lane " << l << " waveform differs";
      EXPECT_EQ(results[l].stats.steps, static_cast<long long>(ref_time[l].size()) - 1);
    }
  }
}

/// Circuit engineered so a replayed pivot breaks down MID-transient: column
/// b's captured pivot is the capacitor companion conductance C/h, which
/// decays as the LTE controller grows h, while a constant VCCS entry in the
/// same column holds the column magnitude up.  About 15 accepted steps in,
/// the pivot ratio crosses kRefactorPivotTol: the scalar path silently
/// re-pivots (factor_with_reuse) and finishes, and the batch path must
/// demote instead of replaying unusable pivots.
spice::Netlist decaying_pivot_netlist() {
  spice::Netlist n;
  const spice::NodeId in = n.node("in");
  const spice::NodeId a = n.node("a");
  const spice::NodeId b = n.node("b");
  n.add_pulse_vsource("Vin", in, 0, 0.0, 1.0, 0.5e-6, 5e-9, 5e-9, 1.0);
  n.add_resistor("Rs", in, a, 1e3);
  n.add_resistor("Rla", a, 0, 1e7);
  n.add_resistor("Rlb", b, 0, 1e7);
  n.add_capacitor("Cab", a, b, 1e-12);
  n.add_vccs("G1", a, 0, b, 0, 0.5);
  spice::NodeId p = a;
  for (int s = 0; s < 5; ++s) {
    const spice::NodeId nd = n.node("x" + std::to_string(s));
    n.add_resistor("RX" + std::to_string(s), p, nd, 2e3);
    n.add_capacitor("CX" + std::to_string(s), nd, 0, 1e-12);
    p = nd;
  }
  return n;
}

TEST(TranBatchTest, MidTransientPivotBreakdownDemotesWholeBatch) {
  spice::Netlist n = decaying_pivot_netlist();
  auto perturb = [&](std::size_t lane) {
    n.capacitor(0).capacitance = 1e-12 * (1.0 + 0.03 * static_cast<double>(lane));
    n.resistor(0).resistance = 1e3 * (1.0 + 0.05 * static_cast<double>(lane));
  };
  spice::TranSolver tran(n, spice::SolverBackend::kSparse);
  spice::DcSolver dc(n, spice::SolverBackend::kSparse);
  spice::TranOptions o;
  o.t_stop = 1e-6;
  o.dt_init = 1e-12;  // h then grows ~1e5x, decaying the C/h pivot with it
  o.dt_max = 1e-7;

  for (std::size_t lanes : {4u, 8u}) {
    std::vector<std::vector<double>> ops(lanes), ref_time(lanes);
    for (std::size_t l = 0; l < lanes; ++l) {
      perturb(l);
      std::vector<double> sol(dc.layout().size(), 0.0);
      ASSERT_EQ(dc.solve({}, &sol), spice::SolveStatus::kOk);
      ops[l] = sol;
      // Scalar survives the breakdown by re-pivoting mid-run.
      ASSERT_EQ(tran.run(o, &ops[l]), spice::SolveStatus::kOk);
      EXPECT_GT(tran.stats().steps, 20);
      ref_time[l] = tran.time();
    }
    const std::size_t scalar_points = tran.num_points();
    std::vector<spice::TranLaneResult> results;
    EXPECT_FALSE(tran.run_batch(o, lanes, [&](std::size_t l) { perturb(l); },
                                ops, &results))
        << "K=" << lanes << ": expected pivot-breakdown demotion";
    // Demotion left the scalar-path state untouched...
    EXPECT_EQ(tran.num_points(), scalar_points);
    // ...and the scalar replay the caller performs reproduces the exact
    // scalar results.
    perturb(1);
    ASSERT_EQ(tran.run(o, &ops[1]), spice::SolveStatus::kOk);
    EXPECT_TRUE(bits_equal(tran.time(), ref_time[1]));
  }
}

// ---------------------------------------------------------------------------
// Layer 3: circuit sessions -- evaluate_batch vs per-lane evaluate().
// ---------------------------------------------------------------------------

std::vector<double> midpoint_design(const mc::YieldProblem& problem, double t) {
  std::vector<double> x(problem.num_design_vars());
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = problem.lower_bound(i) +
           t * (problem.upper_bound(i) - problem.lower_bound(i));
  }
  return x;
}

std::vector<double> noise_block(const mc::YieldProblem& problem,
                                std::size_t lanes, std::uint64_t seed) {
  stats::Rng rng(seed);
  std::vector<double> xis(lanes * problem.noise_dim());
  for (double& v : xis) v = rng.normal();
  return xis;
}

/// Per-lane evaluate() vs one evaluate_batch() call on fresh sessions of
/// the same problem: SampleResults must match exactly (pass AND violation).
void check_session_parity(const mc::YieldProblem& problem, std::size_t lanes,
                          std::uint64_t seed) {
  const std::vector<double> x = midpoint_design(problem, 0.45);
  const std::vector<double> xis = noise_block(problem, lanes, seed);
  const std::size_t dim = problem.noise_dim();

  auto scalar_session = problem.open(x);
  std::vector<mc::SampleResult> scalar(lanes);
  for (std::size_t l = 0; l < lanes; ++l) {
    scalar[l] = scalar_session->evaluate(
        std::span<const double>(xis).subspan(l * dim, dim));
  }

  auto batch_session = problem.open(x);
  std::vector<mc::SampleResult> batched(lanes);
  batch_session->evaluate_batch(xis, lanes, batched);

  for (std::size_t l = 0; l < lanes; ++l) {
    EXPECT_EQ(batched[l].pass, scalar[l].pass) << "lane " << l;
    EXPECT_EQ(batched[l].violation, scalar[l].violation) << "lane " << l;
  }
}

TEST(CircuitBatchTest, AllTopologiesMatchScalarAtEveryWidth) {
  const auto topologies = {circuits::make_five_transistor_ota(),
                           circuits::make_folded_cascode(),
                           circuits::make_two_stage_telescopic()};
  std::uint64_t seed = 0xC1BC;
  for (const auto& topology : topologies) {
    for (int k : {1, 2, 4, 8}) {
      circuits::EvalOptions eval;
      eval.backend = spice::SolverBackend::kSparse;
      eval.batch = k;
      const circuits::CircuitYieldProblem problem(topology, eval);
      EXPECT_EQ(problem.open(midpoint_design(problem, 0.5))->preferred_batch(),
                static_cast<std::size_t>(k));
      check_session_parity(problem, /*lanes=*/9, ++seed);
    }
  }
}

TEST(CircuitBatchTest, TransientSessionsMatchScalar) {
  circuits::EvalOptions eval;
  eval.backend = spice::SolverBackend::kSparse;
  eval.batch = 4;
  eval.transient = true;
  const circuits::CircuitYieldProblem problem(
      circuits::make_five_transistor_ota(), eval);
  check_session_parity(problem, /*lanes=*/6, 0x7A57);
}

TEST(CircuitBatchTest, DenseAutoBackendFallsBackToScalarLoop) {
  // The amplifier systems are below kSparseAutoThreshold, so kAuto resolves
  // dense: evaluate_batch must take the scalar per-lane loop and still
  // match per-lane evaluate() exactly.
  circuits::EvalOptions eval;
  eval.batch = 8;  // backend stays kAuto
  const circuits::CircuitYieldProblem problem(
      circuits::make_five_transistor_ota(), eval);
  check_session_parity(problem, /*lanes=*/8, 0xDE45E);
}

TEST(CircuitBatchTest, BatchWidthNeverChangesResultsAcrossWidths) {
  // Same noise block through batch widths 1/2/8 of the SAME problem
  // options: results identical (purity across widths, not just vs scalar).
  const std::size_t lanes = 8;
  std::vector<std::vector<mc::SampleResult>> results;
  for (int k : {1, 2, 8}) {
    circuits::EvalOptions eval;
    eval.backend = spice::SolverBackend::kSparse;
    eval.batch = k;
    const circuits::CircuitYieldProblem problem(
        circuits::make_two_stage_telescopic(), eval);
    const std::vector<double> x = midpoint_design(problem, 0.6);
    const std::vector<double> xis = noise_block(problem, lanes, 0x5EED5);
    auto session = problem.open(x);
    std::vector<mc::SampleResult> out(lanes);
    session->evaluate_batch(xis, lanes, out);
    results.push_back(std::move(out));
  }
  for (std::size_t i = 1; i < results.size(); ++i) {
    for (std::size_t l = 0; l < lanes; ++l) {
      EXPECT_EQ(results[i][l].pass, results[0][l].pass);
      EXPECT_EQ(results[i][l].violation, results[0][l].violation);
    }
  }
}

// ---------------------------------------------------------------------------
// Layer 4: the deck twin batches identically to the built-in topology.
// ---------------------------------------------------------------------------

TEST(DeckBatchTest, DeckTwinMatchesScalarAndBuiltin) {
  const spice::Deck deck = spice::parse_deck_file(
      std::string(MOHECO_SOURCE_DIR) + "/examples/five_t_ota.cir");
  circuits::EvalOptions eval;
  eval.backend = spice::SolverBackend::kSparse;
  eval.batch = 4;
  const circuits::NetlistYieldProblem deck_problem(deck, eval);
  check_session_parity(deck_problem, /*lanes=*/7, 0xDECC);

  // And the deck problem's batched results equal the built-in topology's
  // batched results on the same (x, xi): one shared evaluation pipeline.
  const circuits::CircuitYieldProblem builtin(
      circuits::make_five_transistor_ota(), eval);
  const std::vector<double> x = midpoint_design(builtin, 0.45);
  const std::vector<double> xis = noise_block(builtin, 4, 0xDECD);
  std::vector<mc::SampleResult> from_deck(4), from_builtin(4);
  deck_problem.open(x)->evaluate_batch(xis, 4, from_deck);
  builtin.open(x)->evaluate_batch(xis, 4, from_builtin);
  for (std::size_t l = 0; l < 4; ++l) {
    EXPECT_EQ(from_deck[l].pass, from_builtin[l].pass);
    EXPECT_EQ(from_deck[l].violation, from_builtin[l].violation);
  }
}

// ---------------------------------------------------------------------------
// Layer 5: EvalScheduler tallies are independent of batch width and thread
// count (the scheduler may split one candidate's samples across sessions at
// any mix of widths without changing the tally).
// ---------------------------------------------------------------------------

std::vector<long long> scheduler_tallies(int batch, int workers,
                                         int per_candidate, int rounds,
                                         std::uint64_t seed) {
  circuits::EvalOptions eval;
  eval.backend = spice::SolverBackend::kSparse;
  eval.batch = batch;
  const circuits::CircuitYieldProblem problem(
      circuits::make_five_transistor_ota(), eval);

  ThreadPool pool(workers);
  mc::EvalScheduler scheduler(pool, {});
  std::vector<std::unique_ptr<mc::CandidateYield>> candidates;
  for (int c = 0; c < 3; ++c) {
    candidates.push_back(std::make_unique<mc::CandidateYield>(
        problem, midpoint_design(problem, 0.3 + 0.2 * c),
        stats::derive_seed(seed, 0xBA7C, static_cast<std::uint64_t>(c))));
  }
  mc::SimCounter sims;
  for (int round = 0; round < rounds; ++round) {
    for (auto& c : candidates) {
      scheduler.enqueue(*c, per_candidate, mc::McOptions{});
    }
    scheduler.flush(sims, mc::SimPhase::kOcba);
  }
  std::vector<long long> tallies;
  for (const auto& c : candidates) tallies.push_back(c->passes());
  return tallies;
}

TEST(SchedulerBatchTest, TalliesIndependentOfBatchWidthAndThreads) {
  const std::uint64_t seed = 0x5C4ED;
  const int per_candidate = 18;
  const std::vector<long long> reference =
      scheduler_tallies(/*batch=*/1, /*workers=*/1, per_candidate,
                        /*rounds=*/2, seed);
  for (int batch : {2, 4, 8}) {
    for (int workers : {1, 3}) {
      EXPECT_EQ(scheduler_tallies(batch, workers, per_candidate, 2, seed),
                reference)
          << "batch=" << batch << " workers=" << workers;
    }
  }
}

}  // namespace
}  // namespace moheco

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <sstream>

#include "src/common/error.hpp"
#include "src/common/json.hpp"
#include "src/common/options.hpp"
#include "src/common/results_cache.hpp"
#include "src/common/table.hpp"

namespace moheco {
namespace {

TEST(Table, AlignsColumnsAndCounts) {
  Table t({"methods", "best", "worst"});
  t.add_row({"MOHECO", "0.04%", "0.63%"});
  t.add_row({"AS+LHS", "0.22%", "1.94%"});
  EXPECT_EQ(t.num_rows(), 2u);
  std::ostringstream oss;
  t.print(oss, "Table 1");
  const std::string out = oss.str();
  EXPECT_NE(out.find("Table 1"), std::string::npos);
  EXPECT_NE(out.find("MOHECO"), std::string::npos);
  EXPECT_NE(out.find("| methods |"), std::string::npos);
}

TEST(Table, RejectsRaggedRow) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"1"}), InvalidArgument);
}

TEST(Table, FormatHelpers) {
  EXPECT_EQ(format_percent(0.0032, 2), "0.32%");
  EXPECT_EQ(format_sig(3.6e-6), "3.60e-06");
  EXPECT_EQ(format_sig(123456.0, 3), "123456");  // within fixed range
  EXPECT_EQ(format_sig(0.0), "0");
}

TEST(Options, EnvAndArgsParsing) {
  setenv("MOHECO_SCALE", "smoke", 1);
  char prog[] = "bench";
  char runs[] = "--runs=5";
  char seed[] = "--seed=99";
  char* argv[] = {prog, runs, seed};
  const BenchOptions options = parse_bench_options(3, argv);
  EXPECT_EQ(options.scale, BenchScale::kSmoke);
  EXPECT_EQ(options.runs, 5);  // explicit flag overrides the scale preset
  EXPECT_EQ(options.seed, 99u);
  unsetenv("MOHECO_SCALE");
}

TEST(Options, RejectsUnknownArgument) {
  char prog[] = "bench";
  char bogus[] = "--bogus";
  char* argv[] = {prog, bogus};
  EXPECT_THROW(parse_bench_options(2, argv), InvalidArgument);
}

TEST(Options, DescribeMentionsScale) {
  char prog[] = "bench";
  char* argv[] = {prog};
  const BenchOptions options = parse_bench_options(1, argv);
  EXPECT_NE(describe(options).find("scale="), std::string::npos);
}

TEST(ResultsCache, RoundTrips) {
  ResultsCache cache("/tmp/moheco_cache_test");
  ResultMap results;
  results["dev"] = {0.1, 0.2, 0.3};
  results["sims"] = {100.0, 200.0};
  cache.store("unit test key!", results);
  const auto loaded = cache.load("unit test key!");
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->at("dev"), results["dev"]);
  EXPECT_EQ(loaded->at("sims"), results["sims"]);
  EXPECT_FALSE(cache.load("missing key").has_value());
}

TEST(ResultsCache, StoreIsAtomicAndLeavesNoTempFiles) {
  const std::string dir = "/tmp/moheco_cache_test_atomic";
  std::filesystem::remove_all(dir);
  ResultsCache cache(dir);
  ResultMap results;
  results["values"] = {1.0, 2.0};
  cache.store("atomic", results);
  // Overwrite an existing entry (the rename-over-existing path).
  results["values"] = {3.0, 4.0};
  cache.store("atomic", results);
  const auto loaded = cache.load("atomic");
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->at("values"), results["values"]);
  // Only the final file remains -- no .tmp.* leftovers in the directory.
  std::size_t files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    ++files;
    EXPECT_EQ(entry.path().extension(), ".txt") << entry.path();
  }
  EXPECT_EQ(files, 1u);
}

// --- JsonValue raw-slice + member-order capture ---------------------------
// The serving protocol relays result objects byte-identically: the client
// re-emits a parsed container via raw() (the exact source slice) and
// renders text reports in the writer's field order via member_names().

TEST(Json, RawReturnsTheExactSourceSlice) {
  // Deliberately odd spacing and lexeme-sensitive numbers: any re-
  // serialization would normalize them and break the byte-identity gate.
  const std::string text =
      "{\"a\": 1.50,\"nested\": { \"x\" :[1, 2.0,3e0] } , \"z\":\"s\"}";
  const std::optional<JsonValue> parsed = parse_json(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->raw(), text);
  EXPECT_EQ((*parsed)["nested"].raw(), "{ \"x\" :[1, 2.0,3e0] }");
  EXPECT_EQ((*parsed)["nested"]["x"].raw(), "[1, 2.0,3e0]");
}

TEST(Json, MemberNamesPreserveInsertionOrder) {
  const std::optional<JsonValue> parsed =
      parse_json("{\"w2\":1,\"l1\":2,\"a\":3,\"w1\":4,\"a\":5}");
  ASSERT_TRUE(parsed.has_value());
  // Source order, not sorted -- and the duplicate key appears once (last
  // value wins, first position wins).
  const std::vector<std::string> want = {"w2", "l1", "a", "w1"};
  EXPECT_EQ(parsed->member_names(), want);
  EXPECT_EQ((*parsed)["a"].as_int(), 5);
}

}  // namespace
}  // namespace moheco

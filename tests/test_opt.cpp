#include <gtest/gtest.h>

#include <cmath>

#include "src/common/error.hpp"
#include "src/opt/constraint.hpp"
#include "src/opt/de.hpp"
#include "src/opt/nelder_mead.hpp"

namespace moheco::opt {
namespace {

Fitness feasible_with_yield(double y) {
  Fitness f;
  f.feasible = true;
  f.violation = 0.0;
  f.yield = y;
  return f;
}

Fitness infeasible_with_violation(double v) {
  Fitness f;
  f.feasible = false;
  f.violation = v;
  f.yield = 0.0;
  return f;
}

TEST(Deb, FeasibleBeatsInfeasible) {
  EXPECT_TRUE(deb_better(feasible_with_yield(0.0),
                         infeasible_with_violation(0.001)));
  EXPECT_FALSE(deb_better(infeasible_with_violation(0.001),
                          feasible_with_yield(0.0)));
}

TEST(Deb, LowerViolationWinsAmongInfeasible) {
  EXPECT_TRUE(deb_better(infeasible_with_violation(0.5),
                         infeasible_with_violation(1.0)));
  EXPECT_FALSE(deb_better(infeasible_with_violation(1.0),
                          infeasible_with_violation(0.5)));
}

TEST(Deb, HigherYieldWinsAmongFeasible) {
  EXPECT_TRUE(deb_better(feasible_with_yield(0.9), feasible_with_yield(0.8)));
  EXPECT_FALSE(deb_better(feasible_with_yield(0.8), feasible_with_yield(0.9)));
  EXPECT_FALSE(deb_better(feasible_with_yield(0.8), feasible_with_yield(0.8)));
}

TEST(Deb, ScalarOrderingIsConsistent) {
  const Fitness a = feasible_with_yield(0.95);
  const Fitness b = feasible_with_yield(0.90);
  const Fitness c = infeasible_with_violation(0.1);
  const Fitness d = infeasible_with_violation(2.0);
  EXPECT_LT(deb_scalar(a), deb_scalar(b));
  EXPECT_LT(deb_scalar(b), deb_scalar(c));
  EXPECT_LT(deb_scalar(c), deb_scalar(d));
}

Bounds unit_bounds(std::size_t dim) {
  Bounds b;
  b.lo.assign(dim, -1.0);
  b.hi.assign(dim, 1.0);
  return b;
}

TEST(De, TrialStaysInBounds) {
  stats::Rng rng(1);
  const Bounds bounds = unit_bounds(3);
  std::vector<std::vector<double>> pop;
  for (int i = 0; i < 6; ++i) pop.push_back(random_point(bounds, rng));
  pop[0] = {0.99, 0.99, 0.99};  // near the corner: mutants will overshoot
  DeConfig config;
  config.f = 2.0;
  for (int rep = 0; rep < 200; ++rep) {
    const auto trial = de_trial(pop, rep % pop.size(), 0, config, bounds, rng);
    for (double v : trial) {
      EXPECT_GE(v, -1.0);
      EXPECT_LE(v, 1.0);
    }
  }
}

TEST(De, AtLeastOneComponentMutates) {
  stats::Rng rng(2);
  const Bounds bounds = unit_bounds(4);
  std::vector<std::vector<double>> pop;
  for (int i = 0; i < 8; ++i) pop.push_back(random_point(bounds, rng));
  DeConfig config;
  config.cr = 0.0;  // crossover never fires; the forced index must
  for (int rep = 0; rep < 100; ++rep) {
    const std::size_t target = rep % pop.size();
    const auto trial = de_trial(pop, target, 0, config, bounds, rng);
    int diff = 0;
    for (std::size_t j = 0; j < trial.size(); ++j) {
      if (trial[j] != pop[target][j]) ++diff;
    }
    EXPECT_GE(diff, 1);
    EXPECT_LE(diff, 1);  // with cr = 0, exactly the forced one
  }
}

TEST(De, BestBaseUsesBestMember) {
  // With F = 0 and CR = 1, the trial equals the base vector exactly.
  stats::Rng rng(3);
  const Bounds bounds = unit_bounds(2);
  std::vector<std::vector<double>> pop = {
      {0.1, 0.1}, {0.2, 0.2}, {0.3, 0.3}, {0.4, 0.4}, {0.5, 0.5}};
  DeConfig config;
  config.f = 0.0;
  config.cr = 1.0;
  config.base = DeBase::kBest;
  const auto trial = de_trial(pop, 4, 2, config, bounds, rng);
  EXPECT_DOUBLE_EQ(trial[0], 0.3);
  EXPECT_DOUBLE_EQ(trial[1], 0.3);
}

TEST(De, RequiresFourMembers) {
  stats::Rng rng(4);
  const Bounds bounds = unit_bounds(2);
  std::vector<std::vector<double>> pop = {{0.0, 0.0}, {0.1, 0.1}, {0.2, 0.2}};
  EXPECT_THROW(de_trial(pop, 0, 0, DeConfig{}, bounds, rng),
               moheco::InvalidArgument);
}

TEST(NelderMead, MinimizesQuadratic) {
  Bounds bounds;
  bounds.lo = {-5.0, -5.0};
  bounds.hi = {5.0, 5.0};
  auto objective = [](std::span<const double> x) {
    const double a = x[0] - 1.0, b = x[1] + 2.0;
    return a * a + 2.0 * b * b;
  };
  NelderMeadOptions options;
  options.max_iterations = 200;
  options.step_fraction = 0.1;
  const std::vector<double> x0 = {3.0, 3.0};
  const auto result = nelder_mead(objective, x0, bounds, options);
  EXPECT_NEAR(result.best_x[0], 1.0, 1e-3);
  EXPECT_NEAR(result.best_x[1], -2.0, 1e-3);
  EXPECT_LT(result.best_f, 1e-5);
}

TEST(NelderMead, RespectsBounds) {
  Bounds bounds;
  bounds.lo = {0.0, 0.0};
  bounds.hi = {1.0, 1.0};
  // Unconstrained optimum at (2, 2): NM must converge to the corner (1, 1).
  auto objective = [&](std::span<const double> x) {
    EXPECT_GE(x[0], 0.0);
    EXPECT_LE(x[0], 1.0);
    EXPECT_GE(x[1], 0.0);
    EXPECT_LE(x[1], 1.0);
    const double a = x[0] - 2.0, b = x[1] - 2.0;
    return a * a + b * b;
  };
  NelderMeadOptions options;
  options.max_iterations = 150;
  const std::vector<double> x0 = {0.5, 0.5};
  const auto result = nelder_mead(objective, x0, bounds, options);
  EXPECT_NEAR(result.best_x[0], 1.0, 1e-2);
  EXPECT_NEAR(result.best_x[1], 1.0, 1e-2);
}

TEST(NelderMead, EvaluationBudgetIsBounded) {
  int calls = 0;
  auto objective = [&](std::span<const double> x) {
    ++calls;
    return x[0] * x[0];
  };
  Bounds bounds;
  bounds.lo = {-1.0};
  bounds.hi = {1.0};
  NelderMeadOptions options;
  options.max_iterations = 10;
  const auto result =
      nelder_mead(objective, std::vector<double>{0.5}, bounds, options);
  EXPECT_EQ(result.evaluations, calls);
  // d+1 initial vertices plus at most 2 evals/iteration (no shrink in 1-D
  // quadratic) keeps the budget tight -- the paper relies on this.
  EXPECT_LE(calls, 2 + 2 * 10 + 2);
}

TEST(NelderMead, StartOnUpperBoundStepsInward) {
  Bounds bounds;
  bounds.lo = {0.0};
  bounds.hi = {1.0};
  auto objective = [](std::span<const double> x) {
    return (x[0] - 0.2) * (x[0] - 0.2);
  };
  NelderMeadOptions options;
  options.max_iterations = 60;
  const auto result =
      nelder_mead(objective, std::vector<double>{1.0}, bounds, options);
  // The initial step must go inward (downhill); exact convergence is not the
  // point of this test (1-D simplexes can collapse early near the optimum).
  EXPECT_LT(result.best_x[0], 0.5);
  EXPECT_NEAR(result.best_x[0], 0.2, 0.08);
}

}  // namespace
}  // namespace moheco::opt

// Generation-wide EvalScheduler: scheduling determinism, equivalence with
// the per-candidate refinement path, session-cache bounds, sticky affinity,
// warm-start blob round-trips, pipelined generation overlap, and the
// upgraded ThreadPool entry points.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>

#include "src/common/error.hpp"
#include "src/common/parallel.hpp"
#include "src/core/moheco.hpp"
#include "src/mc/candidate_yield.hpp"
#include "src/mc/eval_scheduler.hpp"
#include "src/mc/ocba.hpp"
#include "src/mc/synthetic.hpp"
#include "src/stats/rng.hpp"

namespace moheco::mc {
namespace {

// --- ThreadPool upgrades --------------------------------------------------

TEST(Parallel, ChunkedClaimingRunsEveryIndexOnce) {
  ThreadPool pool(4);
  for (std::size_t grain : {std::size_t{1}, std::size_t{7}, std::size_t{64},
                            std::size_t{5000}}) {
    std::vector<std::atomic<int>> hits(1000);
    pool.parallel_for(
        1000, [&](int, std::size_t i) { ++hits[i]; }, grain);
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(Parallel, RunTasksRunsEveryTaskOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  std::vector<std::function<void(int)>> tasks;
  for (std::size_t i = 0; i < hits.size(); ++i) {
    tasks.push_back([&hits, i, &pool](int worker) {
      EXPECT_GE(worker, 0);
      EXPECT_LT(worker, pool.num_workers());
      ++hits[i];
    });
  }
  pool.run_tasks(tasks);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  pool.run_tasks({});  // empty set is a no-op
}

TEST(Parallel, RunTasksPropagatesExceptions) {
  ThreadPool pool(2);
  std::vector<std::function<void(int)>> tasks;
  for (int i = 0; i < 10; ++i) {
    tasks.push_back([i](int) {
      if (i == 3) throw InvalidArgument("boom");
    });
  }
  EXPECT_THROW(pool.run_tasks(tasks), InvalidArgument);
}

TEST(Parallel, ShardedRunsEveryItemOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(500);
  // Unbalanced queues (including an empty one): stealing must still cover
  // every item exactly once.
  std::vector<std::vector<std::size_t>> queues(4);
  for (std::size_t i = 0; i < hits.size(); ++i) {
    if (i < 400) {
      queues[0].push_back(i);  // one overloaded shard
    } else {
      queues[2].push_back(i);
    }
  }
  pool.parallel_for_sharded(queues, [&](int worker, std::size_t i) {
    EXPECT_GE(worker, 0);
    EXPECT_LT(worker, pool.num_workers());
    ++hits[i];
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Parallel, ShardedHandlesMoreQueuesThanWorkersAndEmptySets) {
  ThreadPool pool(2);
  std::vector<std::atomic<int>> hits(60);
  std::vector<std::vector<std::size_t>> queues(7);
  for (std::size_t i = 0; i < hits.size(); ++i) {
    queues[i % queues.size()].push_back(i);
  }
  pool.parallel_for_sharded(queues, [&](int, std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  // Degenerate inputs are no-ops.
  pool.parallel_for_sharded({}, [&](int, std::size_t) { FAIL(); });
  std::vector<std::vector<std::size_t>> empty(3);
  pool.parallel_for_sharded(empty, [&](int, std::size_t) { FAIL(); });
}

TEST(Parallel, ShardedPropagatesExceptions) {
  ThreadPool pool(2);
  std::vector<std::vector<std::size_t>> queues(2);
  for (std::size_t i = 0; i < 20; ++i) queues[i % 2].push_back(i);
  EXPECT_THROW(pool.parallel_for_sharded(queues,
                                         [&](int, std::size_t i) {
                                           if (i == 7) {
                                             throw InvalidArgument("boom");
                                           }
                                         }),
               InvalidArgument);
  // The pool survives for later dispatches.
  std::atomic<int> count{0};
  pool.parallel_for(10, [&](int, std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 10);
}

// --- Session-cache instrumentation ---------------------------------------

/// Counts live and total sessions so tests can observe the cache behaviour.
class CountingProblem final : public YieldProblem {
 public:
  explicit CountingProblem(std::size_t noise_dim = 2)
      : noise_dim_(noise_dim) {}

  std::size_t num_design_vars() const override { return 1; }
  double lower_bound(std::size_t) const override { return -1.0; }
  double upper_bound(std::size_t) const override { return 1.0; }
  std::size_t noise_dim() const override { return noise_dim_; }

  class CountingSession final : public Session {
   public:
    explicit CountingSession(const CountingProblem* parent)
        : parent_(parent) {
      const long long live =
          1 + parent_->live_.fetch_add(1, std::memory_order_relaxed);
      long long peak = parent_->peak_.load(std::memory_order_relaxed);
      while (peak < live && !parent_->peak_.compare_exchange_weak(
                                peak, live, std::memory_order_relaxed)) {
      }
    }
    ~CountingSession() override {
      parent_->live_.fetch_sub(1, std::memory_order_relaxed);
    }
    SampleResult evaluate(std::span<const double> xi) override {
      SampleResult r;
      r.pass = xi.empty() || xi[0] >= 0.0;
      return r;
    }

   private:
    const CountingProblem* parent_;
  };

  std::unique_ptr<Session> open(std::span<const double>) const override {
    opens_.fetch_add(1, std::memory_order_relaxed);
    return std::make_unique<CountingSession>(this);
  }

  long long live() const { return live_.load(); }
  long long peak() const { return peak_.load(); }
  long long opens() const { return opens_.load(); }

 private:
  std::size_t noise_dim_;
  mutable std::atomic<long long> live_{0};
  mutable std::atomic<long long> peak_{0};
  mutable std::atomic<long long> opens_{0};
};

TEST(EvalScheduler, PeakSessionsBoundedByCacheCapacity) {
  const CountingProblem problem;
  const int kWorkers = 4;
  const int kCapacity = 2;
  const int kCandidates = 16;
  ThreadPool pool(kWorkers);
  SchedulerOptions options;
  options.sessions_per_worker = kCapacity;
  EvalScheduler scheduler(pool, options);
  SimCounter sims;

  std::vector<std::unique_ptr<CandidateYield>> owners;
  for (int i = 0; i < kCandidates; ++i) {
    owners.push_back(
        std::make_unique<CandidateYield>(problem, std::vector<double>{0.0},
                                         static_cast<std::uint64_t>(i)));
  }
  for (int round = 0; round < 3; ++round) {
    for (auto& c : owners) scheduler.enqueue(*c, 20, McOptions{});
    scheduler.flush(sims);
  }
  // Eviction destroys before reopening, so the bound is exact on both the
  // problem's own count and the scheduler's instrumentation.
  EXPECT_LE(problem.peak(), kCapacity * kWorkers);
  EXPECT_LE(scheduler.peak_sessions(),
            static_cast<std::size_t>(kCapacity * kWorkers));
  EXPECT_EQ(scheduler.live_sessions(), static_cast<std::size_t>(problem.live()));
  EXPECT_EQ(scheduler.session_opens(), problem.opens());
  EXPECT_EQ(sims.total(), 3LL * kCandidates * 20);
}

TEST(EvalScheduler, CacheHitsOnRepeatedRefinement) {
  const CountingProblem problem;
  ThreadPool pool(2);
  EvalScheduler scheduler(pool);
  SimCounter sims;
  CandidateYield c(problem, {0.0}, 9);
  for (int round = 0; round < 5; ++round) {
    scheduler.refine(c, 50, sims, McOptions{});
  }
  // At most one session per worker is ever opened for a single candidate.
  EXPECT_LE(problem.opens(), 2);
  EXPECT_GT(scheduler.session_hits(), 0);
}

/// open() fails for design points with x[0] < 0 (a candidate whose nominal
/// point cannot even be solved).
class FlakyOpenProblem final : public YieldProblem {
 public:
  std::size_t num_design_vars() const override { return 1; }
  double lower_bound(std::size_t) const override { return -1.0; }
  double upper_bound(std::size_t) const override { return 1.0; }
  std::size_t noise_dim() const override { return 1; }

  class PassSession final : public Session {
   public:
    SampleResult evaluate(std::span<const double>) override {
      SampleResult r;
      r.pass = true;
      return r;
    }
  };

  std::unique_ptr<Session> open(std::span<const double> x) const override {
    if (x[0] < 0.0) throw InvalidArgument("open failed");
    return std::make_unique<PassSession>();
  }
};

TEST(EvalScheduler, SurvivesThrowingSessionConstruction) {
  const FlakyOpenProblem problem;
  ThreadPool pool(2);
  EvalScheduler scheduler(pool);
  SimCounter sims;
  CandidateYield bad(problem, {-0.5}, 1);
  CandidateYield good(problem, {0.5}, 2);
  // Fault containment: the throwing open() quarantines ONLY its candidate
  // (marked failed with the open reason code) instead of poisoning the
  // whole flush with an exception.
  scheduler.refine(bad, 10, sims, McOptions{});
  EXPECT_TRUE(bad.failed());
  EXPECT_EQ(bad.fail_reason(), FailEvent::kQuarantineOpen);
  EXPECT_EQ(bad.samples(), 0);
  EXPECT_EQ(sims.fail_total(FailEvent::kQuarantineOpen), 1);
  // The failed open must not leave a poisoned cache entry behind: the
  // scheduler stays usable and the good candidate evaluates normally.
  scheduler.refine(good, 10, sims, McOptions{});
  EXPECT_EQ(good.samples(), 10);
  EXPECT_EQ(good.passes(), 10);
  EXPECT_EQ(scheduler.live_sessions(), scheduler.peak_sessions());
}

TEST(EvalScheduler, ScreenBatchesAndCountsOnce) {
  const QuadraticYieldProblem problem(2, 4, 1.0, 0.3);
  ThreadPool pool(4);
  EvalScheduler scheduler(pool);
  SimCounter sims;
  std::vector<std::unique_ptr<CandidateYield>> owners;
  std::vector<CandidateYield*> candidates;
  for (int i = 0; i < 8; ++i) {
    const double r = 0.3 * i;  // some inside the feasible disk, some out
    owners.push_back(std::make_unique<CandidateYield>(
        problem, std::vector<double>{r, 0.0},
        static_cast<std::uint64_t>(i)));
    candidates.push_back(owners.back().get());
  }
  scheduler.screen(candidates, sims);
  EXPECT_EQ(sims.phase_total(SimPhase::kScreen), 8);
  for (const auto& c : owners) EXPECT_TRUE(c->screened());
  // Re-screening is free: everything is cached.
  scheduler.screen(candidates, sims);
  EXPECT_EQ(sims.total(), 8);
  // Screen verdicts match the problem's closed form.
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(owners[i]->nominal_feasible(),
              problem.margin(owners[i]->x()) >= 0.0);
  }
}

// --- Scheduling determinism ----------------------------------------------

struct TallySnapshot {
  std::vector<long long> samples;
  std::vector<long long> passes;
  bool operator==(const TallySnapshot&) const = default;
};

TallySnapshot snapshot(
    const std::vector<std::unique_ptr<CandidateYield>>& owners) {
  TallySnapshot s;
  for (const auto& c : owners) {
    s.samples.push_back(c->samples());
    s.passes.push_back(c->passes());
  }
  return s;
}

std::vector<std::unique_ptr<CandidateYield>> make_pool(
    const YieldProblem& problem, int count) {
  std::vector<std::unique_ptr<CandidateYield>> owners;
  for (int i = 0; i < count; ++i) {
    const double r = 0.08 * i;
    owners.push_back(std::make_unique<CandidateYield>(
        problem, std::vector<double>{r, 0.0},
        stats::derive_seed(4242, static_cast<std::uint64_t>(i))));
  }
  return owners;
}

TwoStageOptions determinism_options() {
  TwoStageOptions options;
  options.n0 = 15;
  options.sim_avg = 35;
  options.n_max = 120;
  options.stage2_threshold = 0.8;
  return options;
}

TEST(EvalScheduler, TwoStageBitIdenticalAcrossThreadCounts) {
  const QuadraticYieldProblem problem(2, 6, 1.0, 0.5);
  const TwoStageOptions options = determinism_options();
  int hardware = static_cast<int>(std::thread::hardware_concurrency());
  if (hardware < 1) hardware = 1;

  std::vector<TallySnapshot> snapshots;
  std::vector<std::vector<std::size_t>> promotions;
  for (int threads : {1, 2, hardware}) {
    ThreadPool pool(threads);
    EvalScheduler scheduler(pool);
    SimCounter sims;
    auto owners = make_pool(problem, 10);
    std::vector<CandidateYield*> cands;
    for (auto& c : owners) {
      c->screen_nominal(sims);
      cands.push_back(c.get());
    }
    promotions.push_back(
        two_stage_estimate(cands, options, scheduler, sims));
    snapshots.push_back(snapshot(owners));
  }
  for (std::size_t i = 1; i < snapshots.size(); ++i) {
    EXPECT_EQ(snapshots[i], snapshots[0]) << "thread-count variant " << i;
    EXPECT_EQ(promotions[i], promotions[0]);
  }
}

TEST(EvalScheduler, TwoStageMatchesPerCandidatePath) {
  // The batched scheduler must reproduce the pre-refactor per-candidate
  // flow bit-for-bit: same seeds, same round structure, same tallies.  The
  // reference below replays the old algorithm with one refine() (= one
  // pool barrier) per candidate per round.
  const QuadraticYieldProblem problem(2, 6, 1.0, 0.5);
  const TwoStageOptions options = determinism_options();
  ThreadPool pool(4);

  // --- batched path ---
  auto batched_owners = make_pool(problem, 10);
  std::vector<std::size_t> batched_promoted;
  {
    EvalScheduler scheduler(pool);
    SimCounter sims;
    std::vector<CandidateYield*> cands;
    for (auto& c : batched_owners) {
      c->screen_nominal(sims);
      cands.push_back(c.get());
    }
    batched_promoted = two_stage_estimate(cands, options, scheduler, sims);
  }

  // --- per-candidate reference (the pre-refactor loop) ---
  auto reference_owners = make_pool(problem, 10);
  std::vector<std::size_t> reference_promoted;
  {
    SimCounter sims;
    std::vector<CandidateYield*> cands;
    for (auto& c : reference_owners) {
      c->screen_nominal(sims);
      cands.push_back(c.get());
    }
    const std::size_t s = cands.size();
    long long initial_total = 0;
    long long num_new = 0;
    for (const CandidateYield* c : cands) {
      initial_total += c->samples();
      if (c->samples() < options.n0) ++num_new;
    }
    for (CandidateYield* c : cands) {
      if (c->samples() < options.n0) {
        c->refine(options.n0 - c->samples(), pool, sims, options.mc);
      }
    }
    const long long total_budget =
        initial_total + static_cast<long long>(options.sim_avg) * num_new;
    const long long delta = std::max<long long>(
        static_cast<long long>(s), total_budget / 10);
    while (true) {
      long long used = 0;
      for (const CandidateYield* c : cands) used += c->samples();
      if (used >= total_budget) break;
      const long long round_total = std::min(total_budget, used + delta);
      std::vector<double> means(s), variances(s);
      for (std::size_t i = 0; i < s; ++i) {
        means[i] = cands[i]->mean();
        variances[i] = cands[i]->smoothed_variance();
      }
      const auto target = ocba_allocation(means, variances, round_total);
      long long allowance = round_total - used;
      long long added = 0;
      for (std::size_t i = 0; i < s && allowance > 0; ++i) {
        long long extra = target[i] - cands[i]->samples();
        extra = std::min(extra, static_cast<long long>(options.n_max) -
                                    cands[i]->samples());
        extra = std::min(extra, allowance);
        if (extra > 0) {
          cands[i]->refine(extra, pool, sims, options.mc);
          added += extra;
          allowance -= extra;
        }
      }
      if (added == 0) break;
    }
    for (std::size_t i = 0; i < s; ++i) {
      if (cands[i]->mean() > options.stage2_threshold &&
          cands[i]->samples() < options.n_max) {
        cands[i]->refine(options.n_max - cands[i]->samples(), pool, sims,
                         options.mc);
        reference_promoted.push_back(i);
      } else if (cands[i]->samples() >= options.n_max) {
        reference_promoted.push_back(i);
      }
    }
  }

  EXPECT_EQ(snapshot(batched_owners), snapshot(reference_owners));
  EXPECT_EQ(batched_promoted, reference_promoted);
}

TEST(EvalScheduler, ChunkSizeDoesNotAffectTallies) {
  const QuadraticYieldProblem problem(2, 6, 1.0, 0.5);
  ThreadPool pool(4);
  TallySnapshot reference;
  for (std::size_t chunk : {std::size_t{0}, std::size_t{1}, std::size_t{3},
                            std::size_t{1000}}) {
    SchedulerOptions options;
    options.chunk = chunk;
    EvalScheduler scheduler(pool, options);
    SimCounter sims;
    auto owners = make_pool(problem, 6);
    for (auto& c : owners) scheduler.enqueue(*c, 101, McOptions{});
    scheduler.flush(sims);
    const TallySnapshot s = snapshot(owners);
    if (reference.samples.empty()) {
      reference = s;
    } else {
      EXPECT_EQ(s, reference) << "chunk " << chunk;
    }
  }
}

// --- Sticky affinity ------------------------------------------------------

inline void keep(double& value) { asm volatile("" : "+m"(value)); }

/// CountingProblem with tunable open/evaluate cost, so scheduling tests see
/// realistic (non-degenerate) timing.
class SpinCountProblem final : public YieldProblem {
 public:
  SpinCountProblem(int open_spin, int eval_spin)
      : open_spin_(open_spin), eval_spin_(eval_spin) {}

  std::size_t num_design_vars() const override { return 1; }
  double lower_bound(std::size_t) const override { return -2.0; }
  double upper_bound(std::size_t) const override { return 2.0; }
  std::size_t noise_dim() const override { return 2; }

  class SpinSession final : public Session {
   public:
    SpinSession(double margin, int spin) : margin_(margin), spin_(spin) {}
    SampleResult evaluate(std::span<const double> xi) override {
      double acc = margin_;
      for (int k = 0; k < spin_; ++k) acc += acc * 1e-12 + 1e-9;
      keep(acc);
      SampleResult r;
      r.pass = xi.empty() ||
               margin_ + 0.5 * (xi[0] + xi[1]) >= 0.0;
      return r;
    }

   private:
    double margin_;
    int spin_;
  };

  std::unique_ptr<Session> open(std::span<const double> x) const override {
    opens_.fetch_add(1, std::memory_order_relaxed);
    double acc = x[0];
    for (int k = 0; k < open_spin_; ++k) acc += acc * 1e-12 + 1e-9;
    keep(acc);
    return std::make_unique<SpinSession>(1.0 - x[0] * x[0], eval_spin_);
  }

  long long opens() const { return opens_.load(); }

 private:
  int open_spin_;
  int eval_spin_;
  mutable std::atomic<long long> opens_{0};
};

TEST(EvalScheduler, StickyAffinityCutsSessionChurnAndKeepsTallies) {
  const int kWorkers = 4;
  const int kCandidates = 16;
  const int kRounds = 10;
  const int kPerRound = 8;
  auto run = [&](bool sticky) {
    SpinCountProblem problem(/*open_spin=*/20000, /*eval_spin=*/300);
    ThreadPool pool(kWorkers);
    SchedulerOptions options;
    options.sessions_per_worker = 4;  // = candidates per worker when sticky
    options.sticky = sticky;
    options.warm_start_blobs = 0;
    EvalScheduler scheduler(pool, options);
    SimCounter sims;
    std::vector<std::unique_ptr<CandidateYield>> owners;
    for (int i = 0; i < kCandidates; ++i) {
      owners.push_back(std::make_unique<CandidateYield>(
          problem, std::vector<double>{0.1 * i - 0.8},
          stats::derive_seed(31, static_cast<std::uint64_t>(i))));
    }
    for (int round = 0; round < kRounds; ++round) {
      for (auto& c : owners) scheduler.enqueue(*c, kPerRound, McOptions{});
      scheduler.flush(sims);
    }
    struct Out {
      long long opens;
      long long affinity_hits;
      long long steals;
      long long migrations;
      TallySnapshot tallies;
      SchedBreakdown sched;
    };
    return Out{problem.opens(), scheduler.affinity_hits(), scheduler.steals(),
               scheduler.migrations(), snapshot(owners),
               sims.sched_breakdown()};
  };

  const auto sticky = run(true);
  const auto contiguous = run(false);

  // Tallies never depend on the claiming policy.
  EXPECT_EQ(sticky.tallies, contiguous.tallies);
  // Every chunk was either an affinity hit or a steal, and the flush's
  // SimCounter saw the same events the scheduler counted.
  EXPECT_GT(sticky.affinity_hits, 0);
  EXPECT_EQ(sticky.affinity_hits, sticky.sched.affinity_hits);
  EXPECT_EQ(sticky.steals, sticky.sched.steals);
  EXPECT_EQ(sticky.migrations, sticky.sched.migrations);
  EXPECT_EQ(sticky.opens,
            sticky.sched.cold_opens + sticky.sched.warm_opens);
  // Sticky claiming keeps each candidate's session on (essentially) one
  // worker: with candidates/worker == cache capacity it stops the LRU
  // thrash that contiguous claiming causes.  On a loaded or single-core
  // host the OS serializes the workers and stealing makes both modes
  // thrash alike, so the assertion only forbids sticky claiming from being
  // systematically WORSE; bench_micro_warmpath gates the actual reduction.
  EXPECT_LE(sticky.opens, contiguous.opens + kCandidates);
}

// --- Warm-start blob round-trips ------------------------------------------

/// Warm-start-capable problem: open() is the "expensive" path, open_warm()
/// validates {1.0, x, margin} blobs (rejecting foreign designs) and counts
/// revivals.  Results are pure functions of (x, xi) either way.
class BlobProblem final : public YieldProblem {
 public:
  std::size_t num_design_vars() const override { return 1; }
  double lower_bound(std::size_t) const override { return -2.0; }
  double upper_bound(std::size_t) const override { return 2.0; }
  std::size_t noise_dim() const override { return 2; }

  class BlobSession final : public Session {
   public:
    BlobSession(double x, double margin) : x_(x), margin_(margin) {}
    SampleResult evaluate(std::span<const double> xi) override {
      SampleResult r;
      r.pass = xi.empty() || margin_ + 0.5 * (xi[0] + xi[1]) >= 0.0;
      return r;
    }
    std::vector<double> warm_start_blob() const override {
      return {1.0, x_, margin_};
    }

   private:
    double x_;
    double margin_;
  };

  std::unique_ptr<Session> open(std::span<const double> x) const override {
    cold_.fetch_add(1, std::memory_order_relaxed);
    return std::make_unique<BlobSession>(x[0], 1.0 - x[0] * x[0]);
  }

  std::unique_ptr<Session> open_warm(
      std::span<const double> x,
      std::span<const double> blob) const override {
    if (blob.size() == 3 && blob[0] == 1.0 && blob[1] == x[0]) {
      warm_.fetch_add(1, std::memory_order_relaxed);
      return std::make_unique<BlobSession>(x[0], blob[2]);
    }
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return open(x);
  }

  long long cold() const { return cold_.load(); }
  long long warm() const { return warm_.load(); }
  long long rejected() const { return rejected_.load(); }

 private:
  mutable std::atomic<long long> cold_{0};
  mutable std::atomic<long long> warm_{0};
  mutable std::atomic<long long> rejected_{0};
};

TEST(EvalScheduler, EvictedSessionsReviveFromBlobStore) {
  // Single worker + capacity 1: candidates A and B alternate and every
  // round evicts the other's session, so the open sequence is exactly
  // deterministic: 2 cold opens in round 0, warm revivals ever after.
  auto run_rounds = [](const BlobProblem& problem, int capacity, int blobs) {
    ThreadPool pool(1);
    SchedulerOptions options;
    options.sessions_per_worker = capacity;
    options.warm_start_blobs = blobs;
    EvalScheduler scheduler(pool, options);
    SimCounter sims;
    std::vector<std::unique_ptr<CandidateYield>> owners;
    owners.push_back(std::make_unique<CandidateYield>(
        problem, std::vector<double>{0.3}, 11));
    owners.push_back(std::make_unique<CandidateYield>(
        problem, std::vector<double>{-0.4}, 12));
    for (int round = 0; round < 3; ++round) {
      for (auto& c : owners) {
        scheduler.refine(*c, 50, sims, McOptions{});
      }
    }
    struct Out {
      TallySnapshot tallies;
      long long warm_opens;
      SchedBreakdown sched;
    };
    return Out{snapshot(owners), scheduler.warm_opens(),
               sims.sched_breakdown()};
  };

  BlobProblem evicting;
  const auto revived = run_rounds(evicting, /*capacity=*/1, /*blobs=*/8);
  // Round 0 builds both sessions cold; the remaining 2 * 2 misses revive
  // from the blob store.
  EXPECT_EQ(evicting.cold(), 2);
  EXPECT_EQ(evicting.warm(), 4);
  EXPECT_EQ(evicting.rejected(), 0);
  EXPECT_EQ(revived.warm_opens, 4);
  EXPECT_EQ(revived.sched.cold_opens, 2);
  EXPECT_EQ(revived.sched.warm_opens, 4);

  // evict + revive == never evicted: identical tallies with a cache large
  // enough to never evict...
  BlobProblem roomy;
  const auto pinned = run_rounds(roomy, /*capacity=*/2, /*blobs=*/8);
  EXPECT_EQ(roomy.warm(), 0);
  EXPECT_EQ(pinned.tallies, revived.tallies);

  // ...and with warm starts disabled entirely.
  BlobProblem cold_only;
  const auto cold = run_rounds(cold_only, /*capacity=*/1, /*blobs=*/0);
  EXPECT_EQ(cold_only.warm(), 0);
  EXPECT_EQ(cold_only.cold(), 6);
  EXPECT_EQ(cold.tallies, revived.tallies);
}

TEST(EvalScheduler, ForeignBlobsAreRejected) {
  // A blob-store hash collision hands candidate B a blob serialized for A;
  // open_warm must fall back to a cold open rather than trust it.
  BlobProblem problem;
  const std::vector<double> xa = {0.3};
  const std::vector<double> xb = {-0.7};
  const std::vector<double> blob_a =
      problem.open(xa)->warm_start_blob();
  auto session = problem.open_warm(xb, blob_a);
  EXPECT_EQ(problem.rejected(), 1);
  // The fallback session behaves exactly like a cold one for B.
  const double xi_fail[] = {-1.2, -1.4};
  EXPECT_EQ(session->evaluate({}).pass, problem.open(xb)->evaluate({}).pass);
  EXPECT_EQ(session->evaluate(xi_fail).pass,
            problem.open(xb)->evaluate(xi_fail).pass);
}

TEST(EvalScheduler, ExportBlobsFromAnotherThreadDuringFlush) {
  // The serving daemon persists warm state by snapshotting the blob store
  // from its dispatcher thread while pool workers may still be draining a
  // job set.  export_blobs() serializes against flush() on the maintenance
  // mutex, so hammering it concurrently must neither crash (the sanitize
  // CI job watches this test) nor perturb the tallies, and every snapshot
  // it returns must be internally consistent -- no torn blobs.
  auto run = [](bool concurrent_export) {
    BlobProblem problem;
    ThreadPool pool(4);
    SchedulerOptions options;
    options.sessions_per_worker = 1;  // constant evictions -> blob churn
    options.warm_start_blobs = 32;
    EvalScheduler scheduler(pool, options);
    SimCounter sims;
    std::vector<std::unique_ptr<CandidateYield>> owners;
    for (int i = 0; i < 8; ++i) {
      owners.push_back(std::make_unique<CandidateYield>(
          problem, std::vector<double>{0.2 * i - 0.7},
          stats::derive_seed(77, static_cast<std::uint64_t>(i))));
    }
    std::atomic<bool> done{false};
    std::atomic<long long> snapshots{0};
    std::thread exporter;
    if (concurrent_export) {
      exporter = std::thread([&] {
        while (!done.load(std::memory_order_relaxed)) {
          const ResultMap snap = scheduler.export_blobs();
          for (const auto& [key, blob] : snap) {
            EXPECT_EQ(blob.size(), 3u) << "torn blob under key " << key;
            if (blob.size() == 3) EXPECT_EQ(blob[0], 1.0);
          }
          snapshots.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    for (int round = 0; round < 20; ++round) {
      for (auto& c : owners) scheduler.enqueue(*c, 40, McOptions{});
      scheduler.flush(sims);
    }
    done.store(true);
    if (exporter.joinable()) exporter.join();
    if (concurrent_export) EXPECT_GT(snapshots.load(), 0);
    return snapshot(owners);
  };

  const auto quiet = run(false);
  const auto hammered = run(true);
  EXPECT_EQ(quiet, hammered);
}

TEST(EvalScheduler, CorruptedBlobImportFallsBackCold) {
  // A restarted daemon may hand import_blobs() a snapshot that was
  // truncated on disk or written by a different build.  Unparseable
  // entries are skipped at import; parseable-but-bogus blobs must be
  // rejected by open_warm() and fall back to cold opens, with tallies
  // identical to a never-warmed run.
  SchedulerOptions options;
  options.sessions_per_worker = 1;
  options.warm_start_blobs = 8;

  BlobProblem donor;
  ResultMap snap;
  {
    ThreadPool pool(1);
    EvalScheduler scheduler(pool, options);
    SimCounter sims;
    CandidateYield a(donor, {0.3}, 11);
    CandidateYield b(donor, {-0.4}, 12);
    scheduler.refine(a, 50, sims, McOptions{});
    scheduler.refine(b, 50, sims, McOptions{});
    snap = scheduler.export_blobs();
  }
  ASSERT_EQ(snap.size(), 2u);
  // Corrupt it: truncate one blob, flip the other's magic, and add the
  // kinds of garbage a half-written ResultsCache file could yield.
  auto it = snap.begin();
  it->second = {1.0};        // truncated: wrong blob size
  (++it)->second[0] = 2.0;   // wrong magic for this problem
  snap["not-a-design-hash"] = {1.0, 0.0, 0.0};  // foreign key: skipped
  snap["123456"] = {};                          // empty blob: skipped

  BlobProblem fresh;
  ThreadPool pool(1);
  EvalScheduler scheduler(pool, options);
  // Both corrupt-but-parseable blobs import; the junk rows do not.
  EXPECT_EQ(scheduler.import_blobs(fresh, snap), 2u);
  SimCounter sims;
  CandidateYield a(fresh, {0.3}, 11);
  CandidateYield b(fresh, {-0.4}, 12);
  scheduler.refine(a, 50, sims, McOptions{});
  scheduler.refine(b, 50, sims, McOptions{});
  // open_warm() saw both corrupt blobs, trusted neither, and opened cold.
  EXPECT_EQ(fresh.warm(), 0);
  EXPECT_EQ(fresh.rejected(), 2);
  EXPECT_EQ(fresh.cold(), 2);

  // Cold reference run: identical tallies.
  BlobProblem reference;
  ThreadPool ref_pool(1);
  EvalScheduler ref_scheduler(ref_pool, options);
  SimCounter ref_sims;
  CandidateYield ra(reference, {0.3}, 11);
  CandidateYield rb(reference, {-0.4}, 12);
  ref_scheduler.refine(ra, 50, ref_sims, McOptions{});
  ref_scheduler.refine(rb, 50, ref_sims, McOptions{});
  EXPECT_EQ(a.samples(), ra.samples());
  EXPECT_EQ(a.passes(), ra.passes());
  EXPECT_EQ(b.samples(), rb.samples());
  EXPECT_EQ(b.passes(), rb.passes());
}

// --- Merged job sets, retention, reference yield --------------------------

TEST(EvalScheduler, MergedFlushRunsScreensAndBatchesTogether) {
  const QuadraticYieldProblem problem(2, 4, 1.0, 0.5);
  ThreadPool pool(2);
  EvalScheduler scheduler(pool);
  SimCounter sims;
  CandidateYield a(problem, {0.1, 0.0}, 21);
  CandidateYield b(problem, {0.2, 0.1}, 22);
  scheduler.enqueue(a, 40, McOptions{}, SimPhase::kStage2);
  scheduler.enqueue_screen(b);
  scheduler.flush(sims);
  EXPECT_EQ(sims.phase_total(SimPhase::kStage2), 40);
  EXPECT_EQ(sims.phase_total(SimPhase::kScreen), 1);
  EXPECT_EQ(a.samples(), 40);
  EXPECT_TRUE(b.screened());
  EXPECT_TRUE(b.nominal_feasible());
}

TEST(EvalScheduler, RetainKeepsDroppedCandidatesAliveUntilFlush) {
  const QuadraticYieldProblem problem(2, 4, 1.0, 0.5);
  ThreadPool pool(2);
  EvalScheduler scheduler(pool);
  SimCounter sims;
  auto c = std::make_shared<CandidateYield>(
      problem, std::vector<double>{0.1, 0.2}, 33);
  scheduler.enqueue(*c, 30, McOptions{}, SimPhase::kStage2);
  scheduler.retain(c);
  c.reset();  // the scheduler's keep-alive is now the only owner
  scheduler.flush(sims);  // ASan would catch a dangling tally here
  EXPECT_EQ(sims.phase_total(SimPhase::kStage2), 30);
}

TEST(EvalScheduler, DiscardPendingDropsJobsUntallied) {
  const QuadraticYieldProblem problem(2, 4, 1.0, 0.5);
  ThreadPool pool(2);
  EvalScheduler scheduler(pool);
  SimCounter sims;
  CandidateYield c(problem, {0.1, 0.0}, 44);
  scheduler.enqueue(c, 25, McOptions{});
  scheduler.discard_pending();
  scheduler.flush(sims);
  EXPECT_EQ(c.samples(), 0);
  EXPECT_EQ(sims.total(), 0);
  // The stream position was consumed: the next batch is batch 2, but the
  // scheduler itself stays fully usable.
  scheduler.refine(c, 25, sims, McOptions{});
  EXPECT_EQ(c.samples(), 25);
}

TEST(ReferenceYield, SchedulerOverloadMatchesPoolOverload) {
  const QuadraticYieldProblem problem(2, 4, 1.0, 0.5);
  const std::vector<double> x = {0.5, 0.2};
  ThreadPool pool(4);
  const double via_pool = reference_yield(problem, x, 2000, 123, pool);
  EvalScheduler scheduler(pool);
  SimCounter sims;
  const double via_scheduler = reference_yield(
      problem, x, 2000, 123, scheduler, stats::SamplingMethod::kPMC, &sims);
  EXPECT_EQ(via_pool, via_scheduler);
  EXPECT_EQ(sims.phase_total(SimPhase::kOther), 2000);
  EXPECT_NEAR(via_scheduler, problem.true_yield(x), 0.05);
  // Identical request on the same scheduler: same estimate, and each
  // worker's cache adopts its session from the first call for the new
  // candidate identity -- so across any number of same-design re-estimates
  // no worker ever opens a second session.
  EXPECT_EQ(reference_yield(problem, x, 2000, 123, scheduler), via_scheduler);
  EXPECT_EQ(reference_yield(problem, x, 2000, 123, scheduler), via_scheduler);
  EXPECT_LE(scheduler.session_opens(),
            static_cast<long long>(pool.num_workers()));
  EXPECT_GT(scheduler.session_hits(), 0);
}

// --- Pipelined generation overlap ------------------------------------------

struct OptimizerFingerprint {
  std::vector<double> best_x;
  long long best_samples = 0;
  long long total_simulations = 0;
  long long stage2 = 0;
  std::vector<long long> trace_sims;
  bool operator==(const OptimizerFingerprint&) const = default;
};

OptimizerFingerprint run_optimizer(bool overlap, int threads,
                                   std::uint64_t seed) {
  const QuadraticYieldProblem problem(2, 4, 1.0, 0.4);
  core::MohecoOptions options;
  options.population = 10;
  options.estimation.n0 = 10;
  options.estimation.sim_avg = 20;
  options.estimation.n_max = 80;
  options.overlap_generations = overlap;
  options.threads = threads;
  options.seed = seed;
  const core::MohecoResult result =
      core::MohecoOptimizer(problem, options).run_generations(5);
  OptimizerFingerprint fp;
  fp.best_x = result.best.x;
  fp.best_samples = result.best.samples;
  fp.total_simulations = result.total_simulations;
  fp.stage2 = result.sim_breakdown.stage2;
  for (const auto& g : result.trace) {
    fp.trace_sims.push_back(g.sims_cumulative);
  }
  return fp;
}

TEST(MohecoPipeline, OverlapMatchesSerialPathAcrossThreadCounts) {
  // The pipelined loop (stage-2 of generation g merged with the screens of
  // g+1) must reproduce the serial per-generation flush path bit-for-bit:
  // identical best vector, budget split, and per-generation sim trace, for
  // every thread count.
  const OptimizerFingerprint reference = run_optimizer(false, 1, 7);
  EXPECT_GT(reference.stage2, 0);  // the workload must actually promote
  int hardware = static_cast<int>(std::thread::hardware_concurrency());
  if (hardware < 2) hardware = 2;
  for (int threads : {1, 2, hardware}) {
    for (bool overlap : {false, true}) {
      const OptimizerFingerprint fp = run_optimizer(overlap, threads, 7);
      EXPECT_EQ(fp, reference)
          << "overlap=" << overlap << " threads=" << threads;
    }
  }
}

// --- Per-phase accounting -------------------------------------------------

TEST(SimCounter, TwoStagePhaseBreakdown) {
  const QuadraticYieldProblem problem(2, 6, 1.0, 0.5);
  TwoStageOptions options = determinism_options();
  ThreadPool pool(4);
  EvalScheduler scheduler(pool);
  SimCounter sims;
  auto owners = make_pool(problem, 10);
  std::vector<CandidateYield*> cands;
  for (auto& c : owners) {
    c->screen_nominal(sims);
    cands.push_back(c.get());
  }
  two_stage_estimate(cands, options, scheduler, sims);

  const SimBreakdown b = sims.breakdown();
  EXPECT_EQ(b.screen, 10);
  EXPECT_EQ(b.stage1, 10LL * options.n0);
  EXPECT_GT(b.ocba, 0);
  EXPECT_EQ(b.other, 0);
  EXPECT_EQ(b.total(), sims.total());
  long long tallied = 0;
  for (const auto& c : owners) tallied += c->samples();
  EXPECT_EQ(tallied + b.screen, b.total());
}

}  // namespace
}  // namespace moheco::mc

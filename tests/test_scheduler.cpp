// Generation-wide EvalScheduler: scheduling determinism, equivalence with
// the per-candidate refinement path, session-cache bounds, and the upgraded
// ThreadPool entry points.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>

#include "src/common/error.hpp"
#include "src/common/parallel.hpp"
#include "src/mc/candidate_yield.hpp"
#include "src/mc/eval_scheduler.hpp"
#include "src/mc/ocba.hpp"
#include "src/mc/synthetic.hpp"
#include "src/stats/rng.hpp"

namespace moheco::mc {
namespace {

// --- ThreadPool upgrades --------------------------------------------------

TEST(Parallel, ChunkedClaimingRunsEveryIndexOnce) {
  ThreadPool pool(4);
  for (std::size_t grain : {std::size_t{1}, std::size_t{7}, std::size_t{64},
                            std::size_t{5000}}) {
    std::vector<std::atomic<int>> hits(1000);
    pool.parallel_for(
        1000, [&](int, std::size_t i) { ++hits[i]; }, grain);
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(Parallel, RunTasksRunsEveryTaskOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  std::vector<std::function<void(int)>> tasks;
  for (std::size_t i = 0; i < hits.size(); ++i) {
    tasks.push_back([&hits, i, &pool](int worker) {
      EXPECT_GE(worker, 0);
      EXPECT_LT(worker, pool.num_workers());
      ++hits[i];
    });
  }
  pool.run_tasks(tasks);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  pool.run_tasks({});  // empty set is a no-op
}

TEST(Parallel, RunTasksPropagatesExceptions) {
  ThreadPool pool(2);
  std::vector<std::function<void(int)>> tasks;
  for (int i = 0; i < 10; ++i) {
    tasks.push_back([i](int) {
      if (i == 3) throw InvalidArgument("boom");
    });
  }
  EXPECT_THROW(pool.run_tasks(tasks), InvalidArgument);
}

// --- Session-cache instrumentation ---------------------------------------

/// Counts live and total sessions so tests can observe the cache behaviour.
class CountingProblem final : public YieldProblem {
 public:
  explicit CountingProblem(std::size_t noise_dim = 2)
      : noise_dim_(noise_dim) {}

  std::size_t num_design_vars() const override { return 1; }
  double lower_bound(std::size_t) const override { return -1.0; }
  double upper_bound(std::size_t) const override { return 1.0; }
  std::size_t noise_dim() const override { return noise_dim_; }

  class CountingSession final : public Session {
   public:
    explicit CountingSession(const CountingProblem* parent)
        : parent_(parent) {
      const long long live =
          1 + parent_->live_.fetch_add(1, std::memory_order_relaxed);
      long long peak = parent_->peak_.load(std::memory_order_relaxed);
      while (peak < live && !parent_->peak_.compare_exchange_weak(
                                peak, live, std::memory_order_relaxed)) {
      }
    }
    ~CountingSession() override {
      parent_->live_.fetch_sub(1, std::memory_order_relaxed);
    }
    SampleResult evaluate(std::span<const double> xi) override {
      SampleResult r;
      r.pass = xi.empty() || xi[0] >= 0.0;
      return r;
    }

   private:
    const CountingProblem* parent_;
  };

  std::unique_ptr<Session> open(std::span<const double>) const override {
    opens_.fetch_add(1, std::memory_order_relaxed);
    return std::make_unique<CountingSession>(this);
  }

  long long live() const { return live_.load(); }
  long long peak() const { return peak_.load(); }
  long long opens() const { return opens_.load(); }

 private:
  std::size_t noise_dim_;
  mutable std::atomic<long long> live_{0};
  mutable std::atomic<long long> peak_{0};
  mutable std::atomic<long long> opens_{0};
};

TEST(EvalScheduler, PeakSessionsBoundedByCacheCapacity) {
  const CountingProblem problem;
  const int kWorkers = 4;
  const int kCapacity = 2;
  const int kCandidates = 16;
  ThreadPool pool(kWorkers);
  SchedulerOptions options;
  options.sessions_per_worker = kCapacity;
  EvalScheduler scheduler(pool, options);
  SimCounter sims;

  std::vector<std::unique_ptr<CandidateYield>> owners;
  for (int i = 0; i < kCandidates; ++i) {
    owners.push_back(
        std::make_unique<CandidateYield>(problem, std::vector<double>{0.0},
                                         static_cast<std::uint64_t>(i)));
  }
  for (int round = 0; round < 3; ++round) {
    for (auto& c : owners) scheduler.enqueue(*c, 20, McOptions{});
    scheduler.flush(sims);
  }
  // Eviction destroys before reopening, so the bound is exact on both the
  // problem's own count and the scheduler's instrumentation.
  EXPECT_LE(problem.peak(), kCapacity * kWorkers);
  EXPECT_LE(scheduler.peak_sessions(),
            static_cast<std::size_t>(kCapacity * kWorkers));
  EXPECT_EQ(scheduler.live_sessions(), static_cast<std::size_t>(problem.live()));
  EXPECT_EQ(scheduler.session_opens(), problem.opens());
  EXPECT_EQ(sims.total(), 3LL * kCandidates * 20);
}

TEST(EvalScheduler, CacheHitsOnRepeatedRefinement) {
  const CountingProblem problem;
  ThreadPool pool(2);
  EvalScheduler scheduler(pool);
  SimCounter sims;
  CandidateYield c(problem, {0.0}, 9);
  for (int round = 0; round < 5; ++round) {
    scheduler.refine(c, 50, sims, McOptions{});
  }
  // At most one session per worker is ever opened for a single candidate.
  EXPECT_LE(problem.opens(), 2);
  EXPECT_GT(scheduler.session_hits(), 0);
}

/// open() fails for design points with x[0] < 0 (a candidate whose nominal
/// point cannot even be solved).
class FlakyOpenProblem final : public YieldProblem {
 public:
  std::size_t num_design_vars() const override { return 1; }
  double lower_bound(std::size_t) const override { return -1.0; }
  double upper_bound(std::size_t) const override { return 1.0; }
  std::size_t noise_dim() const override { return 1; }

  class PassSession final : public Session {
   public:
    SampleResult evaluate(std::span<const double>) override {
      SampleResult r;
      r.pass = true;
      return r;
    }
  };

  std::unique_ptr<Session> open(std::span<const double> x) const override {
    if (x[0] < 0.0) throw InvalidArgument("open failed");
    return std::make_unique<PassSession>();
  }
};

TEST(EvalScheduler, SurvivesThrowingSessionConstruction) {
  const FlakyOpenProblem problem;
  ThreadPool pool(2);
  EvalScheduler scheduler(pool);
  SimCounter sims;
  CandidateYield bad(problem, {-0.5}, 1);
  CandidateYield good(problem, {0.5}, 2);
  EXPECT_THROW(scheduler.refine(bad, 10, sims, McOptions{}),
               InvalidArgument);
  // The failed open must not leave a poisoned cache entry behind: the
  // scheduler stays usable and the good candidate evaluates normally.
  scheduler.refine(good, 10, sims, McOptions{});
  EXPECT_EQ(good.samples(), 10);
  EXPECT_EQ(good.passes(), 10);
  EXPECT_EQ(scheduler.live_sessions(), scheduler.peak_sessions());
}

TEST(EvalScheduler, ScreenBatchesAndCountsOnce) {
  const QuadraticYieldProblem problem(2, 4, 1.0, 0.3);
  ThreadPool pool(4);
  EvalScheduler scheduler(pool);
  SimCounter sims;
  std::vector<std::unique_ptr<CandidateYield>> owners;
  std::vector<CandidateYield*> candidates;
  for (int i = 0; i < 8; ++i) {
    const double r = 0.3 * i;  // some inside the feasible disk, some out
    owners.push_back(std::make_unique<CandidateYield>(
        problem, std::vector<double>{r, 0.0},
        static_cast<std::uint64_t>(i)));
    candidates.push_back(owners.back().get());
  }
  scheduler.screen(candidates, sims);
  EXPECT_EQ(sims.phase_total(SimPhase::kScreen), 8);
  for (const auto& c : owners) EXPECT_TRUE(c->screened());
  // Re-screening is free: everything is cached.
  scheduler.screen(candidates, sims);
  EXPECT_EQ(sims.total(), 8);
  // Screen verdicts match the problem's closed form.
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(owners[i]->nominal_feasible(),
              problem.margin(owners[i]->x()) >= 0.0);
  }
}

// --- Scheduling determinism ----------------------------------------------

struct TallySnapshot {
  std::vector<long long> samples;
  std::vector<long long> passes;
  bool operator==(const TallySnapshot&) const = default;
};

TallySnapshot snapshot(
    const std::vector<std::unique_ptr<CandidateYield>>& owners) {
  TallySnapshot s;
  for (const auto& c : owners) {
    s.samples.push_back(c->samples());
    s.passes.push_back(c->passes());
  }
  return s;
}

std::vector<std::unique_ptr<CandidateYield>> make_pool(
    const YieldProblem& problem, int count) {
  std::vector<std::unique_ptr<CandidateYield>> owners;
  for (int i = 0; i < count; ++i) {
    const double r = 0.08 * i;
    owners.push_back(std::make_unique<CandidateYield>(
        problem, std::vector<double>{r, 0.0},
        stats::derive_seed(4242, static_cast<std::uint64_t>(i))));
  }
  return owners;
}

TwoStageOptions determinism_options() {
  TwoStageOptions options;
  options.n0 = 15;
  options.sim_avg = 35;
  options.n_max = 120;
  options.stage2_threshold = 0.8;
  return options;
}

TEST(EvalScheduler, TwoStageBitIdenticalAcrossThreadCounts) {
  const QuadraticYieldProblem problem(2, 6, 1.0, 0.5);
  const TwoStageOptions options = determinism_options();
  int hardware = static_cast<int>(std::thread::hardware_concurrency());
  if (hardware < 1) hardware = 1;

  std::vector<TallySnapshot> snapshots;
  std::vector<std::vector<std::size_t>> promotions;
  for (int threads : {1, 2, hardware}) {
    ThreadPool pool(threads);
    EvalScheduler scheduler(pool);
    SimCounter sims;
    auto owners = make_pool(problem, 10);
    std::vector<CandidateYield*> cands;
    for (auto& c : owners) {
      c->screen_nominal(sims);
      cands.push_back(c.get());
    }
    promotions.push_back(
        two_stage_estimate(cands, options, scheduler, sims));
    snapshots.push_back(snapshot(owners));
  }
  for (std::size_t i = 1; i < snapshots.size(); ++i) {
    EXPECT_EQ(snapshots[i], snapshots[0]) << "thread-count variant " << i;
    EXPECT_EQ(promotions[i], promotions[0]);
  }
}

TEST(EvalScheduler, TwoStageMatchesPerCandidatePath) {
  // The batched scheduler must reproduce the pre-refactor per-candidate
  // flow bit-for-bit: same seeds, same round structure, same tallies.  The
  // reference below replays the old algorithm with one refine() (= one
  // pool barrier) per candidate per round.
  const QuadraticYieldProblem problem(2, 6, 1.0, 0.5);
  const TwoStageOptions options = determinism_options();
  ThreadPool pool(4);

  // --- batched path ---
  auto batched_owners = make_pool(problem, 10);
  std::vector<std::size_t> batched_promoted;
  {
    EvalScheduler scheduler(pool);
    SimCounter sims;
    std::vector<CandidateYield*> cands;
    for (auto& c : batched_owners) {
      c->screen_nominal(sims);
      cands.push_back(c.get());
    }
    batched_promoted = two_stage_estimate(cands, options, scheduler, sims);
  }

  // --- per-candidate reference (the pre-refactor loop) ---
  auto reference_owners = make_pool(problem, 10);
  std::vector<std::size_t> reference_promoted;
  {
    SimCounter sims;
    std::vector<CandidateYield*> cands;
    for (auto& c : reference_owners) {
      c->screen_nominal(sims);
      cands.push_back(c.get());
    }
    const std::size_t s = cands.size();
    long long initial_total = 0;
    long long num_new = 0;
    for (const CandidateYield* c : cands) {
      initial_total += c->samples();
      if (c->samples() < options.n0) ++num_new;
    }
    for (CandidateYield* c : cands) {
      if (c->samples() < options.n0) {
        c->refine(options.n0 - c->samples(), pool, sims, options.mc);
      }
    }
    const long long total_budget =
        initial_total + static_cast<long long>(options.sim_avg) * num_new;
    const long long delta = std::max<long long>(
        static_cast<long long>(s), total_budget / 10);
    while (true) {
      long long used = 0;
      for (const CandidateYield* c : cands) used += c->samples();
      if (used >= total_budget) break;
      const long long round_total = std::min(total_budget, used + delta);
      std::vector<double> means(s), variances(s);
      for (std::size_t i = 0; i < s; ++i) {
        means[i] = cands[i]->mean();
        variances[i] = cands[i]->smoothed_variance();
      }
      const auto target = ocba_allocation(means, variances, round_total);
      long long allowance = round_total - used;
      long long added = 0;
      for (std::size_t i = 0; i < s && allowance > 0; ++i) {
        long long extra = target[i] - cands[i]->samples();
        extra = std::min(extra, static_cast<long long>(options.n_max) -
                                    cands[i]->samples());
        extra = std::min(extra, allowance);
        if (extra > 0) {
          cands[i]->refine(extra, pool, sims, options.mc);
          added += extra;
          allowance -= extra;
        }
      }
      if (added == 0) break;
    }
    for (std::size_t i = 0; i < s; ++i) {
      if (cands[i]->mean() > options.stage2_threshold &&
          cands[i]->samples() < options.n_max) {
        cands[i]->refine(options.n_max - cands[i]->samples(), pool, sims,
                         options.mc);
        reference_promoted.push_back(i);
      } else if (cands[i]->samples() >= options.n_max) {
        reference_promoted.push_back(i);
      }
    }
  }

  EXPECT_EQ(snapshot(batched_owners), snapshot(reference_owners));
  EXPECT_EQ(batched_promoted, reference_promoted);
}

TEST(EvalScheduler, ChunkSizeDoesNotAffectTallies) {
  const QuadraticYieldProblem problem(2, 6, 1.0, 0.5);
  ThreadPool pool(4);
  TallySnapshot reference;
  for (std::size_t chunk : {std::size_t{0}, std::size_t{1}, std::size_t{3},
                            std::size_t{1000}}) {
    SchedulerOptions options;
    options.chunk = chunk;
    EvalScheduler scheduler(pool, options);
    SimCounter sims;
    auto owners = make_pool(problem, 6);
    for (auto& c : owners) scheduler.enqueue(*c, 101, McOptions{});
    scheduler.flush(sims);
    const TallySnapshot s = snapshot(owners);
    if (reference.samples.empty()) {
      reference = s;
    } else {
      EXPECT_EQ(s, reference) << "chunk " << chunk;
    }
  }
}

// --- Per-phase accounting -------------------------------------------------

TEST(SimCounter, TwoStagePhaseBreakdown) {
  const QuadraticYieldProblem problem(2, 6, 1.0, 0.5);
  TwoStageOptions options = determinism_options();
  ThreadPool pool(4);
  EvalScheduler scheduler(pool);
  SimCounter sims;
  auto owners = make_pool(problem, 10);
  std::vector<CandidateYield*> cands;
  for (auto& c : owners) {
    c->screen_nominal(sims);
    cands.push_back(c.get());
  }
  two_stage_estimate(cands, options, scheduler, sims);

  const SimBreakdown b = sims.breakdown();
  EXPECT_EQ(b.screen, 10);
  EXPECT_EQ(b.stage1, 10LL * options.n0);
  EXPECT_GT(b.ocba, 0);
  EXPECT_EQ(b.other, 0);
  EXPECT_EQ(b.total(), sims.total());
  long long tallied = 0;
  for (const auto& c : owners) tallied += c->samples();
  EXPECT_EQ(tallied + b.screen, b.total());
}

}  // namespace
}  // namespace moheco::mc

#include <gtest/gtest.h>

#include <cmath>

#include "src/core/moheco.hpp"
#include "src/mc/synthetic.hpp"

namespace moheco::core {
namespace {

// Small, fast synthetic problem: optimum (yield -> 1) at the origin.
mc::QuadraticYieldProblem make_problem() {
  return mc::QuadraticYieldProblem(3, 6, 1.0, 0.25, 2.0);
}

MohecoOptions fast_options(std::uint64_t seed) {
  MohecoOptions options;
  options.population = 12;
  options.estimation.n0 = 10;
  options.estimation.sim_avg = 25;
  options.estimation.n_max = 150;
  options.max_generations = 60;
  options.stop_stagnation = 15;
  options.threads = 4;
  options.seed = seed;
  return options;
}

TEST(Moheco, FindsHighYieldRegion) {
  const auto problem = make_problem();
  MohecoOptimizer optimizer(problem, fast_options(1));
  const MohecoResult result = optimizer.run();
  ASSERT_TRUE(result.best.fitness.feasible);
  // True yield at the found design must be high (the optimum has
  // Phi(1/0.25) ~ 0.99997).
  EXPECT_GT(problem.true_yield(result.best.x), 0.97);
  EXPECT_GT(result.best.fitness.yield, 0.97);
  EXPECT_GT(result.total_simulations, 0);
  EXPECT_FALSE(result.trace.empty());
}

TEST(Moheco, YieldIsMonotoneOverTraceBest) {
  const auto problem = make_problem();
  MohecoOptimizer optimizer(problem, fast_options(2));
  const MohecoResult result = optimizer.run();
  double prev = -1.0;
  for (const auto& g : result.trace) {
    if (!g.best_feasible) continue;
    EXPECT_GE(g.best_yield + 1e-12, prev);
    prev = std::max(prev, g.best_yield);
  }
}

TEST(Moheco, TraceAccountsSimulations) {
  const auto problem = make_problem();
  MohecoOptimizer optimizer(problem, fast_options(3));
  const MohecoResult result = optimizer.run();
  long long prev = 0;
  for (const auto& g : result.trace) {
    EXPECT_GE(g.sims_cumulative, prev);
    prev = g.sims_cumulative;
  }
  EXPECT_GE(result.total_simulations, prev);
}

TEST(Moheco, DeterministicForSeed) {
  const auto problem = make_problem();
  const MohecoResult a = MohecoOptimizer(problem, fast_options(7)).run();
  MohecoOptions options4 = fast_options(7);
  options4.threads = 2;  // thread count must not change the outcome
  const MohecoResult b = MohecoOptimizer(problem, options4).run();
  ASSERT_EQ(a.best.x.size(), b.best.x.size());
  for (std::size_t i = 0; i < a.best.x.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.best.x[i], b.best.x[i]);
  }
  EXPECT_EQ(a.total_simulations, b.total_simulations);
  EXPECT_EQ(a.best.samples, b.best.samples);
}

TEST(Moheco, OcbaUsesFewerSimsThanFixedBudget) {
  // Harder noise (max yield ~89%, below the 97% stage-2 threshold) so the
  // stage-1 OCBA budget dominates; compare the budget over a fixed number
  // of generations.
  const mc::QuadraticYieldProblem problem(3, 6, 1.0, 0.8, 2.0);
  MohecoOptions moheco_options = fast_options(11);
  // Isolate the budget-allocation effect: no local search in either run
  // (its payoff -- fewer generations to converge -- is measured end-to-end
  // by the benches, as in the paper).
  moheco_options.use_memetic = false;
  const MohecoResult moheco =
      MohecoOptimizer(problem, moheco_options).run_generations(6);

  MohecoOptions fixed_options = fast_options(11);
  fixed_options.use_ocba = false;
  fixed_options.use_memetic = false;
  fixed_options.fixed_budget = 150;
  const MohecoResult fixed =
      MohecoOptimizer(problem, fixed_options).run_generations(6);

  ASSERT_TRUE(moheco.best.fitness.feasible);
  ASSERT_TRUE(fixed.best.fitness.feasible);
  // Substantially lower simulation cost at the same generation count
  // (paper: ~1/7 over full runs).
  EXPECT_LT(moheco.total_simulations, fixed.total_simulations);
}

TEST(Moheco, BaselineConfigurationsRun) {
  const auto problem = make_problem();
  // OO + AS + LHS (no memetic operators).
  MohecoOptions oo = fast_options(21);
  oo.use_memetic = false;
  const MohecoResult oo_result = MohecoOptimizer(problem, oo).run();
  EXPECT_TRUE(oo_result.best.fitness.feasible);
  // AS + PMC fixed budget.
  MohecoOptions pmc = fast_options(22);
  pmc.use_ocba = false;
  pmc.use_memetic = false;
  pmc.fixed_budget = 100;
  pmc.estimation.mc.sampling = stats::SamplingMethod::kPMC;
  const MohecoResult pmc_result = MohecoOptimizer(problem, pmc).run();
  EXPECT_TRUE(pmc_result.best.fitness.feasible);
}

TEST(Moheco, ReportedBestHasAccurateSampleCount) {
  const auto problem = make_problem();
  MohecoOptions options = fast_options(31);
  const MohecoResult result = MohecoOptimizer(problem, options).run();
  ASSERT_TRUE(result.best.fitness.feasible);
  EXPECT_GE(result.best.samples, options.estimation.n_max);
}

TEST(Moheco, RunGenerationsStopsEarly) {
  const auto problem = make_problem();
  MohecoOptimizer optimizer(problem, fast_options(41));
  const MohecoResult result = optimizer.run_generations(2);
  EXPECT_LE(result.generations, 2);
  EXPECT_EQ(result.trace.size(), 3u);  // init + 2 generations
}

TEST(Moheco, InfeasibleStartStillProgresses) {
  // Tiny feasible region: most random candidates are infeasible at nominal;
  // constraint-violation descent must still find it.
  const mc::QuadraticYieldProblem problem(3, 6, 0.09, 0.05, 2.0);
  MohecoOptions options = fast_options(51);
  options.max_generations = 80;
  options.stop_stagnation = 25;
  const MohecoResult result = MohecoOptimizer(problem, options).run();
  ASSERT_TRUE(result.best.fitness.feasible);
  EXPECT_GT(problem.true_yield(result.best.x), 0.8);
}

TEST(Moheco, RejectsTinyPopulation) {
  const auto problem = make_problem();
  MohecoOptions options = fast_options(61);
  options.population = 3;
  EXPECT_THROW(MohecoOptimizer(problem, options), InvalidArgument);
}

}  // namespace
}  // namespace moheco::core

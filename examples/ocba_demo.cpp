// OCBA in isolation: given ten candidate designs with known yields, show
// how equation (1) concentrates the simulation budget on the contenders
// for the top spot -- the mechanism behind the paper's Fig. 3.
#include <cstdio>

#include "src/common/parallel.hpp"
#include "src/mc/candidate_yield.hpp"
#include "src/mc/ocba.hpp"
#include "src/mc/synthetic.hpp"

int main() {
  using namespace moheco;
  using namespace moheco::mc;

  const BernoulliArmsProblem problem(
      {0.92, 0.89, 0.75, 0.60, 0.45, 0.30, 0.88, 0.20, 0.55, 0.92});
  ThreadPool pool;
  SimCounter sims;

  std::vector<std::unique_ptr<CandidateYield>> owners;
  std::vector<CandidateYield*> candidates;
  for (std::size_t i = 0; i < problem.yields().size(); ++i) {
    owners.push_back(std::make_unique<CandidateYield>(
        problem, std::vector<double>{static_cast<double>(i)}, 1000 + i));
    candidates.push_back(owners.back().get());
  }

  TwoStageOptions options;  // n0 = 15, sim_avg = 35 (paper settings)
  options.n_max = 500;
  options.mc.sampling = stats::SamplingMethod::kPMC;
  two_stage_estimate(candidates, options, pool, sims);

  std::printf("%-6s %-12s %-12s %-10s %s\n", "arm", "true yield",
              "estimate", "samples", "budget share");
  for (std::size_t i = 0; i < owners.size(); ++i) {
    const auto& c = *owners[i];
    std::printf("%-6zu %-12.2f %-12.3f %-10lld %s\n", i,
                problem.yields()[i], c.mean(), c.samples(),
                std::string(static_cast<std::size_t>(
                                60.0 * c.samples() / sims.total()),
                            '#')
                    .c_str());
  }
  std::printf("total simulations: %lld (equal allocation would be %lld per "
              "arm)\n",
              sims.total(), sims.total() / 10);
  std::printf("note how the near-best arms absorb the budget while clearly "
              "bad arms stay at the pilot count.\n");
  return 0;
}

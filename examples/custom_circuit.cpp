// Using the simulation substrate directly: build a netlist with the spice
// API, solve the operating point, and sweep the AC response -- the same
// code path the yield optimizer drives hundreds of thousands of times.
//
// The circuit is a two-stage RC-loaded common-source amplifier with an
// NMOS current-mirror bias.
#include <cmath>
#include <cstdio>

#include "src/circuits/tech.hpp"
#include "src/spice/ac_solver.hpp"
#include "src/spice/dc_solver.hpp"
#include "src/spice/netlist.hpp"

int main() {
  using namespace moheco::spice;
  const moheco::circuits::Technology& tech = moheco::circuits::tech035();

  Netlist netlist;
  const NodeId gnd = 0;
  const NodeId vdd = netlist.node("vdd");
  const NodeId in = netlist.node("in");
  const NodeId bias = netlist.node("bias");
  const NodeId drain = netlist.node("drain");

  netlist.add_vsource("Vdd", vdd, gnd, 3.3);
  // AC drive coupled through a large capacitor; the DC gate bias comes
  // from resistor self-biasing (Rf forces Vgs = Vds, so the device always
  // conducts exactly the mirror current, saturated).
  const NodeId gate = netlist.node("gate");
  netlist.add_vsource("Vin", in, gnd, 0.0, 1.0);
  netlist.add_capacitor("Cin", in, gate, 1e-6);
  netlist.add_resistor("Rf", drain, gate, 1e6);
  // Current-mirror load: 100uA reference into a PMOS diode.
  netlist.add_isource("Iref", bias, gnd, 100e-6);
  netlist.add_mosfet("Mdiode", bias, bias, vdd, vdd, /*is_pmos=*/true,
                     60e-6, 1e-6, tech.pmos);
  netlist.add_mosfet("Mload", drain, bias, vdd, vdd, /*is_pmos=*/true,
                     60e-6, 1e-6, tech.pmos);
  netlist.add_mosfet("Mcs", drain, gate, gnd, gnd, /*is_pmos=*/false,
                     40e-6, 0.7e-6, tech.nmos);
  netlist.add_capacitor("CL", drain, gnd, 1e-12);

  DcSolver dc(netlist);
  if (dc.solve(DcOptions{}) != SolveStatus::kOk) {
    std::printf("DC solve failed\n");
    return 1;
  }
  const OperatingPoint& op = dc.op();
  std::printf("operating point:\n");
  std::printf("  V(drain) = %.3f V\n", op.node_voltage[drain]);
  for (std::size_t i = 0; i < netlist.mosfets().size(); ++i) {
    const auto& m = netlist.mosfets()[i];
    const auto& rec = op.mosfets[i];
    std::printf("  %-6s Id=%7.1f uA  gm=%6.3f mS  %s (margin %.3f V)\n",
                m.name.c_str(), 1e6 * std::fabs(rec.eval.id),
                1e3 * rec.eval.gm,
                rec.sat_margin > 0 ? "saturated" : "TRIODE", rec.sat_margin);
  }

  AcSolver ac(netlist, op);
  std::printf("\nAC response V(drain)/V(in):\n");
  for (double freq = 1e3; freq <= 1e10; freq *= 10.0) {
    if (ac.solve(freq) != SolveStatus::kOk) break;
    const std::complex<double> h = ac.voltage(drain);
    std::printf("  f = %8.0e Hz: %7.2f dB, %7.1f deg\n", freq,
                20.0 * std::log10(std::abs(h)),
                std::arg(h) * 180.0 / M_PI);
  }
  return 0;
}

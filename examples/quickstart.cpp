// Quickstart: optimize the yield of a 5-transistor OTA with MOHECO.
//
// Demonstrates the three public-API layers in ~40 lines:
//   1. pick a circuit topology (or write your own, see custom_circuit.cpp),
//   2. wrap it as a yield problem,
//   3. run the MOHECO optimizer and inspect the result.
#include <cstdio>

#include "src/circuits/circuit_yield.hpp"
#include "src/core/moheco.hpp"
#include "src/mc/candidate_yield.hpp"

int main() {
  using namespace moheco;

  // 1. The benchmark circuit: a single-ended 5T OTA in the 0.35um card.
  auto topology = circuits::make_five_transistor_ota();
  std::printf("circuit: %s (%d transistors, %zu design variables, %d process "
              "variables)\n",
              topology->name().c_str(), topology->num_transistors(),
              topology->design_vars().size(),
              circuits::ProcessModel(topology->tech(),
                                     topology->num_transistors())
                  .dim());

  // 2. Yield problem: pass iff all specs hold under the sampled process.
  circuits::CircuitYieldProblem problem(topology);

  // 3. MOHECO with the paper's estimation constants (n0=15, sim_avg=35,
  //    n_max=500, 97% stage-2 threshold, NM after 5 stagnant generations).
  core::MohecoOptions options;
  options.population = 24;
  options.max_generations = 60;
  options.seed = 42;
  core::MohecoOptimizer optimizer(problem, options);
  const core::MohecoResult result = optimizer.run();

  std::printf("\nfinished after %d generations, %lld simulations\n",
              result.generations, result.total_simulations);
  if (!result.best.fitness.feasible) {
    std::printf("no nominally feasible design found (violation %.3f)\n",
                result.best.fitness.violation);
    return 1;
  }
  std::printf("reported yield: %.2f%% (%lld MC samples)\n",
              100.0 * result.best.fitness.yield, result.best.samples);
  std::printf("design point:\n");
  const auto& vars = topology->design_vars();
  for (std::size_t i = 0; i < vars.size(); ++i) {
    std::printf("  %-8s = %.4g\n", vars[i].name.c_str(), result.best.x[i]);
  }

  // Full nominal readout at the optimum, including the large-signal
  // step-response metrics from the unity-gain buffer transient testbench.
  circuits::EvalOptions eval_options;
  eval_options.transient = true;
  circuits::AmplifierEvaluator evaluator(topology, eval_options);
  const circuits::Performance perf =
      evaluator.session(result.best.x)->nominal();
  std::printf("nominal metrics at the optimum:\n");
  std::printf("  A0 = %.1f dB, GBW = %.1f MHz, PM = %.1f deg, power = %.3f mW\n",
              perf.a0_db, perf.gbw / 1e6, perf.pm_deg, perf.power * 1e3);
  std::printf("  slew rate = %.1f V/us, settling time (1%% band) = %.0f ns\n",
              perf.slew_rate / 1e6, perf.settling_time * 1e9);

  // Verify against a larger independent MC run.
  ThreadPool pool;
  const double reference =
      mc::reference_yield(problem, result.best.x, 20000, 7, pool);
  std::printf("independent 20000-sample MC yield: %.2f%%\n",
              100.0 * reference);
  return 0;
}

// Example 1 of the paper: yield optimization of a fully differential
// folded-cascode amplifier (0.35um, 3.3V) with specs A0>=70dB, GBW>=40MHz,
// PM>=60deg, OS>=4.6V, power<=1.07mW.  Runs MOHECO and prints the
// convergence history and the final design's nominal performance.
#include <cstdio>

#include "src/circuits/circuit_yield.hpp"
#include "src/core/moheco.hpp"
#include "src/mc/candidate_yield.hpp"

int main(int argc, char** argv) {
  using namespace moheco;
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1;

  circuits::CircuitYieldProblem problem(circuits::make_folded_cascode());
  core::MohecoOptions options;
  options.population = 30;
  options.max_generations = 100;
  options.seed = seed;
  core::MohecoOptimizer optimizer(problem, options);
  const core::MohecoResult result = optimizer.run();

  std::printf("convergence (generation: best estimated yield, cumulative "
              "simulations):\n");
  for (const auto& g : result.trace) {
    if (g.generation % 5 != 0 && g.generation != result.generations) continue;
    std::printf("  gen %3d: %6.2f%%  %8lld sims%s\n", g.generation,
                100.0 * g.best_yield, g.sims_cumulative,
                g.local_search_triggered ? "  [NM local search]" : "");
  }
  if (!result.best.fitness.feasible) {
    std::printf("no feasible design found\n");
    return 1;
  }

  const circuits::Performance perf = problem.performance(result.best.x, {});
  std::printf("\nfinal design (reported yield %.2f%%, %lld simulations "
              "total):\n",
              100.0 * result.best.fitness.yield, result.total_simulations);
  std::printf("  A0    = %.1f dB   (spec >= 70)\n", perf.a0_db);
  std::printf("  GBW   = %.1f MHz  (spec >= 40)\n", perf.gbw / 1e6);
  std::printf("  PM    = %.1f deg  (spec >= 60)\n", perf.pm_deg);
  std::printf("  OS    = %.2f V    (spec >= 4.6)\n", perf.swing);
  std::printf("  power = %.3f mW   (spec <= 1.07)\n", 1e3 * perf.power);

  ThreadPool pool;
  std::printf("independent 20000-sample MC yield: %.2f%%\n",
              100.0 * mc::reference_yield(problem, result.best.x, 20000, 3,
                                          pool));
  return 0;
}

// Example 2 of the paper: yield optimization of a two-stage amplifier with
// a telescopic cascode first stage (90nm, 1.2V) under severe specs,
// including area<=180um^2 and offset<=0.05mV -- the constraints that make
// intra-die mismatch the limiting yield factor.
#include <cstdio>

#include "src/circuits/circuit_yield.hpp"
#include "src/core/moheco.hpp"
#include "src/mc/candidate_yield.hpp"

int main(int argc, char** argv) {
  using namespace moheco;
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2;

  circuits::CircuitYieldProblem problem(
      circuits::make_two_stage_telescopic());
  core::MohecoOptions options;
  options.population = 30;
  options.max_generations = 100;
  options.seed = seed;
  core::MohecoOptimizer optimizer(problem, options);
  const core::MohecoResult result = optimizer.run();

  if (!result.best.fitness.feasible) {
    std::printf("no feasible design found after %d generations (violation "
                "%.3f); try another seed\n",
                result.generations, result.best.fitness.violation);
    return 1;
  }

  const circuits::Performance perf = problem.performance(result.best.x, {});
  std::printf("finished after %d generations, %lld simulations\n",
              result.generations, result.total_simulations);
  std::printf("reported yield %.2f%% at the final design:\n",
              100.0 * result.best.fitness.yield);
  std::printf("  A0     = %.1f dB    (spec >= 60)\n", perf.a0_db);
  std::printf("  GBW    = %.0f MHz   (spec >= 300)\n", perf.gbw / 1e6);
  std::printf("  PM     = %.1f deg   (spec >= 60)\n", perf.pm_deg);
  std::printf("  OS     = %.2f V     (spec >= 1.8)\n", perf.swing);
  std::printf("  power  = %.2f mW    (spec <= 10)\n", 1e3 * perf.power);
  std::printf("  area   = %.1f um^2  (spec <= 180)\n", 1e12 * perf.area);
  std::printf("  offset = 0 at nominal; MC spec |offset| <= 0.05 mV\n");

  ThreadPool pool;
  std::printf("independent 20000-sample MC yield: %.2f%%\n",
              100.0 * mc::reference_yield(problem, result.best.x, 20000, 5,
                                          pool));
  return 0;
}

// Ablation: OCBA (eq. 1) vs equal allocation at identical total budgets.
// Measures the probability of correctly selecting the best design from a
// noisy population -- the quantity OCBA optimizes asymptotically.
#include <cstdio>
#include <iostream>

#include "bench/bench_support.hpp"
#include "src/mc/candidate_yield.hpp"
#include "src/mc/ocba.hpp"
#include "src/mc/synthetic.hpp"
#include "src/stats/rng.hpp"

int main(int argc, char** argv) {
  using namespace moheco;
  using namespace moheco::mc;
  const BenchOptions options = bench::bench_prologue(
      argc, argv, "Ablation: OCBA vs equal allocation (P[correct selection])");
  const BernoulliArmsProblem problem(
      {0.74, 0.78, 0.55, 0.40, 0.82, 0.66, 0.71, 0.30, 0.50, 0.79});
  const auto arms = problem.yields().size();
  ThreadPool pool(options.threads);
  McOptions pmc;
  pmc.sampling = stats::SamplingMethod::kPMC;
  const int reps = options.scale == BenchScale::kFull ? 500 : 150;

  Table table({"budget (sims/arm avg)", "equal allocation", "OCBA",
               "OCBA advantage"});
  std::string json_rows;
  for (int budget_per_arm : {25, 35, 50, 80}) {
    int correct_equal = 0, correct_ocba = 0;
    long long equal_sims = 0;
    SimBreakdown ocba_breakdown;
    for (int rep = 0; rep < reps; ++rep) {
      // Equal allocation.
      {
        std::size_t best = 0;
        double best_mean = -1.0;
        SimCounter sims;
        for (std::size_t i = 0; i < arms; ++i) {
          CandidateYield c(problem, {static_cast<double>(i)},
                           stats::derive_seed(options.seed, rep, i));
          c.refine(budget_per_arm, pool, sims, pmc);
          if (c.mean() > best_mean) {
            best_mean = c.mean();
            best = i;
          }
        }
        if (best == 4) ++correct_equal;
        equal_sims += sims.total();
      }
      // OCBA at the same total budget.
      {
        SimCounter sims;
        std::vector<std::unique_ptr<CandidateYield>> owners;
        std::vector<CandidateYield*> cands;
        for (std::size_t i = 0; i < arms; ++i) {
          owners.push_back(std::make_unique<CandidateYield>(
              problem, std::vector<double>{static_cast<double>(i)},
              stats::derive_seed(options.seed, rep, i)));
          cands.push_back(owners.back().get());
        }
        TwoStageOptions two_stage;
        two_stage.n0 = 15;
        two_stage.sim_avg = budget_per_arm;
        two_stage.n_max = 1 << 20;
        two_stage.stage2_threshold = 2.0;  // pure stage-1 comparison
        two_stage.mc = pmc;
        two_stage_estimate(cands, two_stage, pool, sims);
        std::size_t best = 0;
        for (std::size_t i = 1; i < arms; ++i) {
          if (owners[i]->mean() > owners[best]->mean()) best = i;
        }
        if (best == 4) ++correct_ocba;
        ocba_breakdown += sims.breakdown();
      }
    }
    char eq[32], oc[32], adv[32];
    std::snprintf(eq, sizeof(eq), "%.1f%%", 100.0 * correct_equal / reps);
    std::snprintf(oc, sizeof(oc), "%.1f%%", 100.0 * correct_ocba / reps);
    std::snprintf(adv, sizeof(adv), "%+.1f pts",
                  100.0 * (correct_ocba - correct_equal) / reps);
    table.add_row({std::to_string(budget_per_arm), eq, oc, adv});
    char row[512];
    std::snprintf(row, sizeof(row),
                  "%s{\"budget_per_arm\":%d,\"p_correct_equal\":%.4f,"
                  "\"p_correct_ocba\":%.4f,\"equal_sims\":%lld,"
                  "\"ocba_sims\":",
                  json_rows.empty() ? "" : ",", budget_per_arm,
                  static_cast<double>(correct_equal) / reps,
                  static_cast<double>(correct_ocba) / reps, equal_sims);
    json_rows += row;
    json_rows += bench::json_sim_breakdown(ocba_breakdown);
    json_rows += "}";
  }
  table.print(std::cout,
              "P[select the true best of 10 Bernoulli designs], " +
                  std::to_string(reps) + " repetitions");
  std::cout << "expected: OCBA above equal allocation at every budget\n";
  if (!bench::write_bench_json(options.json, "bench_ablation_ocba",
                               "\"budgets\":[" + json_rows + "]")) {
    return 1;
  }
  return 0;
}

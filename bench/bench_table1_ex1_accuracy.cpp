// Table 1 of the paper: deviation of the reported yield from the
// reference-MC yield estimate, example 1 (folded-cascode, 0.35um).
#include <iostream>

#include "bench/bench_support.hpp"
#include "src/circuits/circuit_yield.hpp"

int main(int argc, char** argv) {
  using namespace moheco;
  const BenchOptions options =
      bench::bench_prologue(argc, argv, "Table 1: example 1 yield deviation");
  circuits::CircuitYieldProblem problem(circuits::make_folded_cascode(),
                                        bench::eval_options(options));
  const auto methods = bench::example1_methods();
  const bench::StudyData data =
      bench::run_example_study("ex1", problem, methods, options);
  bench::print_accuracy_table(
      data, methods,
      "Deviation of reported yield vs " +
          std::to_string(options.reference_samples) +
          "-sample reference MC (paper: 50000)");
  std::cout << "paper shape: 300 sims noticeably worse (~0.8% avg); 500/700/"
               "OO/MOHECO comparable (~0.3-0.5% avg)\n";
  return 0;
}

// Micro benchmark for the warm evaluation path: sticky candidate->worker
// affinity plus the warm-start blob store, measured against the non-sticky
// PR 3 scheduler (contiguous claiming, no blobs) on identical work.
//
// The synthetic problem charges a large session-open cost (the nominal
// measurement stand-in) and a small per-sample cost, like the circuit
// problems.  Two workloads:
//
//   - eviction-heavy: candidates per worker == cache capacity.  Non-sticky
//     claiming makes every worker touch most of the population, so the LRU
//     caches thrash and every rebuilt session re-runs the expensive
//     nominal measurement from cold.  Sticky affinity pins each candidate
//     to one worker (killing the thrash when workers run concurrently) and
//     the warm-start blob store revives whatever still gets evicted.
//     Gates >= 3x fewer COLD session opens (full nominal re-measurements;
//     robust to core count -- on an oversubscribed host the OS serializes
//     the workers, stealing defeats affinity, and only the blob store can
//     help) and >= 1.5x samples/sec at 8 workers.  Total opens are
//     reported too: on hosts with >= 8 real cores they drop as well.
//   - capacity-constrained: cache capacity below candidates per worker, so
//     even the sticky path must evict.  The warm-start blob store turns
//     those rebuilds into cheap revivals.  Gates >= 1.5x samples/sec at 8
//     workers.
//
// Doubles as a correctness gate: tallies must be bit-identical across
// sticky on/off, blobs on/off, and worker counts; and the optimizer's
// pipelined generation overlap (stage-2 of generation g merged with the
// screens of g+1) must reproduce the serial per-generation path bit-for-bit
// across thread counts.  Violations exit non-zero so CI fails.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_support.hpp"
#include "src/common/parallel.hpp"
#include "src/common/table.hpp"
#include "src/core/moheco.hpp"
#include "src/mc/candidate_yield.hpp"
#include "src/mc/eval_scheduler.hpp"
#include "src/mc/synthetic.hpp"
#include "src/stats/rng.hpp"

namespace {

using namespace moheco;

inline void keep(double& value) { asm volatile("" : "+m"(value)); }

void spin(int iterations) {
  double acc = 1.0;
  for (int k = 0; k < iterations; ++k) acc += acc * 1e-12 + 1e-9;
  keep(acc);
}

/// Quadratic-margin pass/fail with an expensive open() (the nominal
/// measurement stand-in) and a cheap evaluate(), plus warm-start support:
/// a valid blob skips the open cost, as the circuit problems skip their
/// nominal DC+AC measurement.
class WarmPathProblem final : public mc::YieldProblem {
 public:
  WarmPathProblem(int open_spin, int eval_spin, double sigma)
      : open_spin_(open_spin), eval_spin_(eval_spin), sigma_(sigma) {}

  std::size_t num_design_vars() const override { return 1; }
  double lower_bound(std::size_t) const override { return -2.0; }
  double upper_bound(std::size_t) const override { return 2.0; }
  std::size_t noise_dim() const override { return 4; }

  class WarmSession final : public Session {
   public:
    WarmSession(const WarmPathProblem* parent, double x, bool from_blob)
        : parent_(parent), x_(x), margin_(1.0 - x * x) {
      if (!from_blob) spin(parent_->open_spin_);
    }

    mc::SampleResult evaluate(std::span<const double> xi) override {
      spin(parent_->eval_spin_);
      double w = 0.0;
      for (double z : xi) w += z;
      const double g = margin_ + parent_->sigma_ * 0.5 * w;
      mc::SampleResult r;
      r.pass = g >= 0.0;
      r.violation = r.pass ? 0.0 : -g;
      return r;
    }

    std::vector<double> warm_start_blob() const override {
      return {1.0, x_, margin_};
    }

   private:
    const WarmPathProblem* parent_;
    double x_;
    double margin_;
  };

  std::unique_ptr<Session> open(std::span<const double> x) const override {
    return std::make_unique<WarmSession>(this, x[0], /*from_blob=*/false);
  }

  std::unique_ptr<Session> open_warm(
      std::span<const double> x,
      std::span<const double> blob) const override {
    // Validate like the circuit problems: version + exact design match.
    if (blob.size() == 3 && blob[0] == 1.0 && blob[1] == x[0]) {
      return std::make_unique<WarmSession>(this, x[0], /*from_blob=*/true);
    }
    return open(x);
  }

 private:
  int open_spin_;
  int eval_spin_;
  double sigma_;
};

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

struct RunResult {
  double samples_per_sec = 0.0;
  long long session_opens = 0;
  long long warm_opens = 0;
  long long affinity_hits = 0;
  long long steals = 0;
  long long migrations = 0;
  std::vector<long long> passes;  ///< per-candidate tally (determinism key)
};

RunResult run_rounds(const mc::YieldProblem& problem, int num_candidates,
                     int rounds, int per_candidate, int workers,
                     const mc::SchedulerOptions& scheduler_options,
                     std::uint64_t seed) {
  ThreadPool pool(workers);
  mc::EvalScheduler scheduler(pool, scheduler_options);
  std::vector<std::unique_ptr<mc::CandidateYield>> candidates;
  candidates.reserve(static_cast<std::size_t>(num_candidates));
  for (int i = 0; i < num_candidates; ++i) {
    const double x = -1.5 + 3.0 * i / std::max(1, num_candidates - 1);
    candidates.push_back(std::make_unique<mc::CandidateYield>(
        problem, std::vector<double>{x},
        stats::derive_seed(seed, 0x3A9A, static_cast<std::uint64_t>(i))));
  }
  mc::SimCounter sims;
  const mc::McOptions mc_options;

  const auto start = std::chrono::steady_clock::now();
  for (int round = 0; round < rounds; ++round) {
    for (auto& c : candidates) {
      scheduler.enqueue(*c, per_candidate, mc_options);
    }
    scheduler.flush(sims, mc::SimPhase::kOcba);
  }
  const double elapsed = seconds_since(start);

  RunResult result;
  result.samples_per_sec = static_cast<double>(sims.total()) / elapsed;
  result.session_opens = scheduler.session_opens();
  result.warm_opens = scheduler.warm_opens();
  result.affinity_hits = scheduler.affinity_hits();
  result.steals = scheduler.steals();
  result.migrations = scheduler.migrations();
  for (const auto& c : candidates) result.passes.push_back(c->passes());
  return result;
}

/// Fingerprint of an optimizer run for the pipelined-vs-serial equivalence
/// gate: design vector bits, per-phase budget split, per-generation
/// cumulative simulations.
struct RunFingerprint {
  std::vector<double> best_x;
  long long best_samples = 0;
  long long total_simulations = 0;
  std::vector<long long> trace_sims;
  bool operator==(const RunFingerprint&) const = default;
};

RunFingerprint optimizer_fingerprint(bool overlap, int threads) {
  const mc::QuadraticYieldProblem problem(2, 4, 1.0, 0.4);
  core::MohecoOptions options;
  options.population = 10;
  options.estimation.n0 = 10;
  options.estimation.sim_avg = 20;
  options.estimation.n_max = 80;
  options.overlap_generations = overlap;
  options.threads = threads;
  options.seed = 99;
  const core::MohecoResult result =
      core::MohecoOptimizer(problem, options).run_generations(6);
  RunFingerprint fp;
  fp.best_x = result.best.x;
  fp.best_samples = result.best.samples;
  fp.total_simulations = result.total_simulations;
  for (const auto& g : result.trace) fp.trace_sims.push_back(g.sims_cumulative);
  return fp;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions options = bench::bench_prologue(
      argc, argv,
      "Micro: warm-path scheduler (sticky affinity + warm-start blobs) vs "
      "the non-sticky PR 3 scheduler");
  const bool smoke = options.scale == BenchScale::kSmoke;
  const int num_candidates = 64;
  const int open_spin = 40000;  // ~tens of us: nominal measurement stand-in
  const int eval_spin = 600;    // under a us: per-sample solve stand-in
  const WarmPathProblem problem(open_spin, eval_spin, 0.5);

  struct Scenario {
    const char* name;
    int sessions_per_worker;
    bool gate_opens;  ///< the >= 3x session-open reduction gate
  };
  const Scenario scenarios[] = {
      // candidates/worker == capacity at 8 workers: sticky -> no evictions.
      {"eviction-heavy (cap=8)", 8, true},
      // capacity below candidates/worker: warm-start revivals carry it.
      {"capacity-constrained (cap=4)", 4, false},
  };
  const std::vector<int> worker_counts =
      smoke ? std::vector<int>{2, 8} : std::vector<int>{1, 2, 4, 8};
  const int per_candidate = 2;
  const int rounds = smoke ? 12 : 30;

  Table table({"workload", "workers", "pr3 samp/s", "warm samp/s", "speedup",
               "opens pr3", "opens warm", "cold opens", "warm share",
               "steals"});
  bool ok = true;
  std::string json_rows;
  std::vector<long long> reference_passes;
  for (const Scenario& scenario : scenarios) {
    for (int workers : worker_counts) {
      mc::SchedulerOptions baseline;  // the PR 3 scheduler shape
      baseline.sessions_per_worker = scenario.sessions_per_worker;
      baseline.sticky = false;
      baseline.warm_start_blobs = 0;
      mc::SchedulerOptions warm;
      warm.sessions_per_worker = scenario.sessions_per_worker;

      const RunResult pr3 = run_rounds(problem, num_candidates, rounds,
                                       per_candidate, workers, baseline,
                                       options.seed);
      const RunResult opt = run_rounds(problem, num_candidates, rounds,
                                       per_candidate, workers, warm,
                                       options.seed);

      if (pr3.passes != opt.passes) {
        std::fprintf(stderr,
                     "FAIL %s @%d workers: warm-path tallies differ from the "
                     "non-sticky baseline\n",
                     scenario.name, workers);
        ok = false;
      }
      if (reference_passes.empty()) reference_passes = opt.passes;
      if (opt.passes != reference_passes) {
        std::fprintf(stderr,
                     "FAIL %s @%d workers: tallies depend on worker count or "
                     "cache capacity\n",
                     scenario.name, workers);
        ok = false;
      }
      const double speedup = opt.samples_per_sec / pr3.samples_per_sec;
      const double open_ratio =
          static_cast<double>(pr3.session_opens) /
          static_cast<double>(std::max(1LL, opt.session_opens));
      // The baseline has no blob store, so every one of its opens is cold.
      const long long opt_cold = opt.session_opens - opt.warm_opens;
      const double cold_ratio = static_cast<double>(pr3.session_opens) /
                                static_cast<double>(std::max(1LL, opt_cold));
      if (workers == 8 && speedup < 1.5) {
        std::fprintf(stderr,
                     "FAIL %s @8 workers: warm-path speedup %.2fx < 1.5x\n",
                     scenario.name, speedup);
        ok = false;
      }
      if (workers == 8 && scenario.gate_opens && cold_ratio < 3.0) {
        std::fprintf(stderr,
                     "FAIL %s @8 workers: cold session-open reduction %.2fx "
                     "< 3x (%lld -> %lld)\n",
                     scenario.name, cold_ratio, pr3.session_opens, opt_cold);
        ok = false;
      }

      const double warm_share =
          opt.session_opens > 0
              ? static_cast<double>(opt.warm_opens) /
                    static_cast<double>(opt.session_opens)
              : 0.0;
      char pc[32], ba[32], sp[32], ws[32];
      std::snprintf(pc, sizeof(pc), "%.3g", pr3.samples_per_sec);
      std::snprintf(ba, sizeof(ba), "%.3g", opt.samples_per_sec);
      std::snprintf(sp, sizeof(sp), "%.1fx", speedup);
      std::snprintf(ws, sizeof(ws), "%.0f%%", 100.0 * warm_share);
      table.add_row({scenario.name, std::to_string(workers), pc, ba, sp,
                     std::to_string(pr3.session_opens),
                     std::to_string(opt.session_opens),
                     std::to_string(opt_cold), ws,
                     std::to_string(opt.steals)});
      char row[512];
      std::snprintf(
          row, sizeof(row),
          "%s{\"workload\":\"%s\",\"workers\":%d,\"candidates\":%d,"
          "\"pr3_sps\":%.1f,\"warm_sps\":%.1f,\"speedup\":%.2f,"
          "\"pr3_opens\":%lld,\"warm_path_opens\":%lld,\"open_ratio\":%.2f,"
          "\"cold_opens\":%lld,\"cold_ratio\":%.2f,"
          "\"warm_opens\":%lld,\"affinity_hits\":%lld,\"steals\":%lld,"
          "\"migrations\":%lld}",
          json_rows.empty() ? "" : ",", scenario.name, workers, num_candidates,
          pr3.samples_per_sec, opt.samples_per_sec, speedup, pr3.session_opens,
          opt.session_opens, open_ratio, opt_cold, cold_ratio, opt.warm_opens,
          opt.affinity_hits, opt.steals, opt.migrations);
      json_rows += row;
    }
  }
  table.print(std::cout,
              "non-sticky/cold (PR 3) vs sticky+warm-start EvalScheduler (" +
                  std::to_string(num_candidates) + " candidates)");

  // Pipelined generation overlap: the merged stage-2 + screen job set must
  // reproduce the serial per-generation flush path bit-for-bit, across
  // thread counts.
  bool pipeline_ok = true;
  const RunFingerprint serial_reference = optimizer_fingerprint(false, 1);
  for (int threads : {1, 2, 8}) {
    for (bool overlap : {false, true}) {
      const RunFingerprint fp = optimizer_fingerprint(overlap, threads);
      if (!(fp == serial_reference)) {
        std::fprintf(stderr,
                     "FAIL pipelined-vs-serial: overlap=%d threads=%d "
                     "diverges from the serial single-thread path\n",
                     overlap ? 1 : 0, threads);
        pipeline_ok = false;
      }
    }
  }
  ok = ok && pipeline_ok;
  std::cout << "gates: identical tallies, >=1.5x samples/sec @8 workers, "
               ">=3x fewer cold session opens (nominal re-measurements) on "
               "the eviction-heavy workload, "
               "pipelined == serial generation path ("
            << (pipeline_ok ? "ok" : "FAIL") << ")\n";

  if (!bench::write_bench_json(
          options.json, "bench_micro_warmpath",
          "\"scenarios\":[" + json_rows + "],\"pipeline_equivalent\":" +
              (pipeline_ok ? std::string("true") : std::string("false")))) {
    return 1;
  }
  return ok ? 0 : 1;
}

// Micro benchmark for the batched (SoA) sample kernels: the MNA warm path
// -- slot-replay assembly, pivot-order-fixed numeric refactorization, and
// forward/back substitution -- run K Monte-Carlo samples at a time through
// MnaSystem's batch mode instead of one at a time.
//
// Workload: a 3-D resistor-cube MNA system (power-grid-style connectivity,
// 1000 unknowns) whose edge conductances are perturbed per sample, exactly
// like Monte-Carlo model-card perturbations perturb the amplifier systems:
// the pattern is fixed, only slot values change.  The 3-D fill-in makes the
// numeric factorization dominate each sample -- the regime the batched
// kernels target -- while 2-D grids this size factor so cheaply that
// assembly (inherently scalar stamping) caps the measurable gain.  The
// scalar baseline pays the full symbolic traversal (index chasing, one
// branch per nonzero) per sample; the batched path pays it once per K
// samples and runs the lane arithmetic over contiguous SoA slices.
//
// Timing rows cover every (batch width K, kernel vector width) pair the
// host can dispatch -- the dispatch cap (set_simd_dispatch_cap) pins the
// runtime kernel choice to scalar/2/4/8-wide so one run shows what the
// portable build, an AVX2 host and an AVX-512 host would each deliver.
// Each row's throughput is a best-of-N measurement (minimum wall time over
// repetitions) so scheduler noise inflates nothing; each row's speedup is
// the median of per-rep paired ratios against the scalar baseline measured
// in the same repetition, so host frequency drift between repetitions
// cancels inside the pair.
//
// Doubles as a correctness gate, because the whole point of the batch mode
// is that it is a pure throughput knob:
//   - per-sample solutions must be BIT-identical to the scalar path for
//     K in {2, 4, 8} (the all-lanes-nonzero fast path must not flip signed
//     zeros, lanes must never mix);
//   - EvalScheduler yield tallies over a sparse-backend circuit problem
//     must be identical across batch widths and thread counts;
//   - samples/sec at K=8 must be >= 2x the scalar warm path, and >= 3x
//     when the wide (4/8-lane) kernels dispatch (the acceptance gates for
//     the SoA kernels);
//   - the lockstep batched transient must produce bit-identical waveforms
//     and run >= 1.8x faster than per-lane scalar transients at K=8.
// Violations exit non-zero so CI fails.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_support.hpp"
#include "src/circuits/circuit_yield.hpp"
#include "src/circuits/topology.hpp"
#include "src/common/parallel.hpp"
#include "src/common/table.hpp"
#include "src/linalg/simd_caps.hpp"
#include "src/mc/candidate_yield.hpp"
#include "src/mc/eval_scheduler.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"
#include "src/spice/dc_solver.hpp"
#include "src/spice/mna.hpp"
#include "src/spice/netlist.hpp"
#include "src/spice/tran_solver.hpp"
#include "src/stats/rng.hpp"

namespace {

using namespace moheco;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// 3-D resistor-cube MNA workload with per-sample conductance
/// perturbations.  Nodes are matrix indices directly (no ground elision
/// needed: every edge stamp is the full 4-entry stencil) and the stamp
/// sequence is identical for every sample, as MnaSystem's slot replay
/// requires.  The cube's fill-in puts ~95% of each scalar sample in the
/// numeric refactorization, so the measured speedup reflects the batched
/// kernels rather than the (inherently scalar) stamping.
struct GridWorkload {
  int side = 0;
  std::vector<std::pair<int, int>> edges;
  std::size_t n = 0;

  explicit GridWorkload(int s) : side(s) {
    n = static_cast<std::size_t>(s) * static_cast<std::size_t>(s) *
        static_cast<std::size_t>(s);
    const auto id = [s](int i, int j, int k) { return (i * s + j) * s + k; };
    for (int i = 0; i < s; ++i) {
      for (int j = 0; j < s; ++j) {
        for (int k = 0; k < s; ++k) {
          if (k + 1 < s) edges.push_back({id(i, j, k), id(i, j, k + 1)});
          if (j + 1 < s) edges.push_back({id(i, j, k), id(i, j + 1, k)});
          if (i + 1 < s) edges.push_back({id(i, j, k), id(i + 1, j, k)});
        }
      }
    }
  }

  /// Deterministic per-(sample, edge) conductance: base grid conductance
  /// with a few-percent "process" perturbation from a cheap hash, the same
  /// for the scalar and batched paths.
  static double conductance(std::uint64_t sample, std::uint64_t edge) {
    std::uint64_t z = (sample * 0x9E3779B97F4A7C15ull) ^
                      (edge * 0xBF58476D1CE4E5B9ull) ^ 0x94D049BB133111EBull;
    z ^= z >> 27;
    z *= 0x2545F4914F6CDD1Dull;
    z ^= z >> 31;
    const double u =
        static_cast<double>(z >> 11) * (1.0 / 9007199254740992.0);  // [0, 1)
    return 1e-3 * (1.0 + 0.05 * (2.0 * u - 1.0));
  }

  /// One sample's stamp sequence (identical order every time).  The rhs is
  /// a single corner injection, so it is almost all zeros -- which drives
  /// the substitution kernels through their zero-skip/signed-zero paths.
  void stamp(spice::MnaSystem<double>& sys, std::uint64_t sample) const {
    for (std::size_t e = 0; e < edges.size(); ++e) {
      const auto [a, b] = edges[e];
      const double g = conductance(sample, e);
      sys.add(a, a, g);
      sys.add(b, b, g);
      sys.add(a, b, -g);
      sys.add(b, a, -g);
    }
    for (std::size_t i = 0; i < n; ++i) {
      sys.add(static_cast<int>(i), static_cast<int>(i), 1e-9);
    }
    sys.rhs_add(0, 1.0);
    sys.rhs_add(static_cast<int>(n) - 1, -0.25);
  }
};

/// Scalar warm path: assemble (slot replay) + refactor + solve, one sample
/// at a time.  `out` (optional) receives each sample's solution.
double run_scalar(const GridWorkload& grid, spice::MnaSystem<double>& sys,
                  std::uint64_t first, std::uint64_t count,
                  std::vector<std::vector<double>>* out) {
  const auto start = std::chrono::steady_clock::now();
  for (std::uint64_t s = first; s < first + count; ++s) {
    sys.begin_assembly();
    grid.stamp(sys, s);
    sys.end_assembly();
    std::vector<double> x = sys.rhs();
    if (!sys.factor()) {
      std::fprintf(stderr, "FAIL scalar factor() on sample %llu\n",
                   static_cast<unsigned long long>(s));
      std::exit(1);
    }
    sys.solve(x);
    if (out != nullptr) out->push_back(std::move(x));
  }
  return seconds_since(start);
}

/// Batched warm path: K lanes per begin_batch round, same samples.
double run_batched(const GridWorkload& grid, spice::MnaSystem<double>& sys,
                   std::uint64_t first, std::uint64_t count, std::size_t k,
                   std::vector<std::vector<double>>* out) {
  const auto start = std::chrono::steady_clock::now();
  for (std::uint64_t s = first; s < first + count; s += k) {
    const std::size_t lanes =
        static_cast<std::size_t>(std::min<std::uint64_t>(k, first + count - s));
    sys.begin_batch(lanes);
    for (std::size_t l = 0; l < lanes; ++l) {
      sys.begin_lane(l);
      grid.stamp(sys, s + l);
      sys.end_lane();
    }
    if (!sys.factor_batch()) {
      std::fprintf(stderr, "FAIL factor_batch() at sample %llu (K=%zu)\n",
                   static_cast<unsigned long long>(s), lanes);
      std::exit(1);
    }
    std::vector<double> xb = sys.batch_rhs();
    sys.solve_batch(xb);
    sys.end_batch();
    if (out != nullptr) {
      for (std::size_t l = 0; l < lanes; ++l) {
        std::vector<double> x(grid.n);
        for (std::size_t i = 0; i < grid.n; ++i) x[i] = xb[i * lanes + l];
        out->push_back(std::move(x));
      }
    }
  }
  return seconds_since(start);
}

bool bitwise_equal(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

/// Pulse-driven 2-D RC grid for the batched-transient gate: resistor mesh
/// with a capacitor per node, so every timestep's Newton factorization has
/// real 2-D fill-in (a tridiagonal ladder would factor in O(n) and hide
/// the batched kernels entirely; a transient pays assembly per Newton
/// round, so its gate is 1.8x rather than the warm DC path's 3x).  Per-lane
/// R perturbations go through the mutable netlist accessors, exactly how
/// process sampling perturbs the amplifier step bench in place.
spice::Netlist tran_grid(int side) {
  spice::Netlist n;
  const spice::NodeId in = n.node("in");
  n.add_pulse_vsource("Vin", in, 0, 0.0, 1.0, 20e-9, 2e-9, 2e-9, 1.0);
  auto grid_node = [&](int i, int j) {
    return n.node("g" + std::to_string(i) + "_" + std::to_string(j));
  };
  n.add_resistor("Rs", in, grid_node(0, 0), 200.0);
  for (int i = 0; i < side; ++i) {
    for (int j = 0; j < side; ++j) {
      if (j + 1 < side) {
        n.add_resistor("Rh" + std::to_string(i) + "_" + std::to_string(j),
                       grid_node(i, j), grid_node(i, j + 1), 1e3);
      }
      if (i + 1 < side) {
        n.add_resistor("Rv" + std::to_string(i) + "_" + std::to_string(j),
                       grid_node(i, j), grid_node(i + 1, j), 1e3);
      }
      n.add_capacitor("C" + std::to_string(i) + "_" + std::to_string(j),
                      grid_node(i, j), 0, 1e-12);
    }
  }
  return n;
}

/// EvalScheduler yield tallies for a sparse-backend circuit problem at one
/// (batch width, thread count) combination.
std::vector<long long> circuit_tallies(int batch, int workers,
                                       int per_candidate, int rounds,
                                       std::uint64_t seed) {
  circuits::EvalOptions eval;
  eval.backend = spice::SolverBackend::kSparse;
  eval.batch = batch;
  const circuits::CircuitYieldProblem problem(
      circuits::make_five_transistor_ota(), eval);

  ThreadPool pool(workers);
  mc::EvalScheduler scheduler(pool, {});
  std::vector<std::unique_ptr<mc::CandidateYield>> candidates;
  const std::size_t nvars = problem.num_design_vars();
  for (int c = 0; c < 3; ++c) {
    std::vector<double> x(nvars);
    const double t = 0.35 + 0.15 * c;
    for (std::size_t i = 0; i < nvars; ++i) {
      x[i] = problem.lower_bound(i) +
             t * (problem.upper_bound(i) - problem.lower_bound(i));
    }
    candidates.push_back(std::make_unique<mc::CandidateYield>(
        problem, x,
        stats::derive_seed(seed, 0xBA7C, static_cast<std::uint64_t>(c))));
  }
  mc::SimCounter sims;
  for (int round = 0; round < rounds; ++round) {
    for (auto& c : candidates) {
      scheduler.enqueue(*c, per_candidate, mc::McOptions{});
    }
    scheduler.flush(sims, mc::SimPhase::kOcba);
  }
  std::vector<long long> tallies;
  for (const auto& c : candidates) tallies.push_back(c->passes());
  return tallies;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions options = bench::bench_prologue(
      argc, argv,
      "Micro: batched SoA sample kernels (assemble+refactor+solve K lanes "
      "at once) vs the scalar warm path");
  const bool smoke = options.scale == BenchScale::kSmoke;

  // Side 10 (n=1000) is the sweet spot on current hosts: big enough that
  // the cube's fill-in makes factorization dominate, small enough that the
  // K=8 SoA workspaces still live mostly in cache.  Smoke runs the same
  // system with fewer samples, so the smoke gate measures the same regime.
  const int grid_side = 10;
  const GridWorkload grid(grid_side);
  const std::uint64_t identity_samples = smoke ? 24 : 48;
  const std::uint64_t timing_samples = smoke ? 64 : 160;
  const int timing_reps = smoke ? 5 : 5;

  spice::MnaSystem<double> sys;
  sys.reset(grid.n, spice::SolverBackend::kSparse);
  // Capture the pattern and the symbolic analysis (one cold factorization);
  // everything after this is the warm path both modes share.
  run_scalar(grid, sys, /*first=*/0, /*count=*/1, nullptr);

  bool ok = true;

  // --- Gate 1: bitwise per-sample identity, K in {2, 4, 8}. ---
  std::vector<std::vector<double>> scalar_solutions;
  run_scalar(grid, sys, 1, identity_samples, &scalar_solutions);
  for (std::size_t k : {std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
    std::vector<std::vector<double>> batched_solutions;
    run_batched(grid, sys, 1, identity_samples, k, &batched_solutions);
    for (std::uint64_t s = 0; s < identity_samples; ++s) {
      if (!bitwise_equal(scalar_solutions[s], batched_solutions[s])) {
        std::fprintf(stderr,
                     "FAIL K=%zu: sample %llu solution differs bitwise from "
                     "the scalar path\n",
                     k, static_cast<unsigned long long>(s));
        ok = false;
        break;
      }
    }
  }

  // --- Gate 2: samples/sec per (K, kernel width); >= 2x at K=8, >= 3x
  // when the wide kernels dispatch. ---
  const linalg::SimdCaps& caps = linalg::simd_caps();
  // Every (K, dispatch cap) pair that yields a distinct kernel width on
  // this host: cap 2 reproduces the portable two-wide build, caps 4/8
  // engage the AVX2/AVX-512 translation units when the host executes them.
  struct WidthRow {
    std::size_t k;
    int cap;
    int width;
    double best = 1e300;
    std::vector<double> rep_times;
  };
  std::vector<WidthRow> width_rows;
  for (std::size_t k : {std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
    int last_width = 0;
    for (int cap : {2, 4, 8}) {
      if (cap > caps.max_lane_width && last_width > 0) break;
      linalg::set_simd_dispatch_cap(cap);
      const int width = linalg::simd_dispatch_width(k);
      if (width == last_width) continue;  // cap change didn't move dispatch
      last_width = width;
      width_rows.push_back({k, cap, width});
    }
  }
  // Interleave the scalar baseline and every width row within each
  // repetition.  Throughputs (sps) are best-of-reps, the standard
  // noise-floor estimate.  Speedups are the MEDIAN of per-rep paired
  // ratios: each rep measures the scalar baseline and every batched row
  // back to back, so CPU-frequency drift between reps (which hits the
  // latency-bound scalar path far harder than the bandwidth-bound batched
  // rows) cancels within the pair instead of pairing one rep's scalar
  // burst against another rep's batch time.
  double scalar_best = 1e300;
  std::vector<double> scalar_rep_times(timing_reps);
  for (int rep = 0; rep < timing_reps; ++rep) {
    scalar_rep_times[rep] = run_scalar(grid, sys, 1000, timing_samples,
                                       nullptr);
    scalar_best = std::min(scalar_best, scalar_rep_times[rep]);
    for (WidthRow& row : width_rows) {
      linalg::set_simd_dispatch_cap(row.cap);
      row.rep_times.push_back(
          run_batched(grid, sys, 1000, timing_samples, row.k, nullptr));
      row.best = std::min(row.best, row.rep_times.back());
    }
  }
  linalg::set_simd_dispatch_cap(caps.max_lane_width);  // restore
  const auto median_paired_speedup = [&](const WidthRow& row) {
    std::vector<double> ratios(row.rep_times.size());
    for (std::size_t i = 0; i < ratios.size(); ++i) {
      ratios[i] = scalar_rep_times[i] / row.rep_times[i];
    }
    std::sort(ratios.begin(), ratios.end());
    return ratios[ratios.size() / 2];
  };

  Table table({"path", "kernel", "samples/s", "speedup"});
  const double scalar_sps = static_cast<double>(timing_samples) / scalar_best;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3g", scalar_sps);
  table.add_row({"scalar (K=1)", "w=1", buf, "1.0x"});
  std::string json_rows;
  {
    char row[160];
    std::snprintf(row, sizeof(row),
                  "{\"k\":1,\"kernel_width\":1,\"sps\":%.1f,\"speedup\":1.0}",
                  scalar_sps);
    json_rows += row;
  }
  // Gate row: the best K=8 row with a wide (4/8-lane) kernel.  The two wide
  // widths are close by design and which one wins is host-specific (AVX-512
  // units downclock on some parts, double-pump on others), so the gate takes
  // whichever the host runs faster -- the regression job tracks every row
  // individually.  Hosts with no wide kernel gate their best K=8 row at 2x.
  double k8_wide_speedup = 0.0;
  int k8_wide_width = 1;
  for (const WidthRow& wr : width_rows) {
    const double sps = static_cast<double>(timing_samples) / wr.best;
    const double speedup = median_paired_speedup(wr);
    if (wr.k == 8) {
      const bool wide = wr.width >= 4;
      const bool best_wide = k8_wide_width >= 4;
      if ((wide && !best_wide) ||
          (wide == best_wide && speedup > k8_wide_speedup)) {
        k8_wide_width = wr.width;
        k8_wide_speedup = speedup;
      }
    }
    char sp[32];
    std::snprintf(buf, sizeof(buf), "%.3g", sps);
    std::snprintf(sp, sizeof(sp), "%.2fx", speedup);
    table.add_row({"batched K=" + std::to_string(wr.k),
                   "w=" + std::to_string(wr.width), buf, sp});
    char row[160];
    std::snprintf(row, sizeof(row),
                  ",{\"k\":%zu,\"kernel_width\":%d,\"sps\":%.1f,"
                  "\"speedup\":%.2f}",
                  wr.k, wr.width, sps, speedup);
    json_rows += row;
  }
  // The throughput gate scales with what the host can dispatch: every host
  // must clear 2x at K=8; hosts where the wide kernels engage must clear 3x.
  const double k8_required = k8_wide_width >= 4 ? 3.0 : 2.0;
  if (k8_wide_speedup < k8_required) {
    std::fprintf(stderr,
                 "FAIL batched K=8 (kernel width %d) speedup %.2fx < %.1fx "
                 "over the scalar warm path\n",
                 k8_wide_width, k8_wide_speedup, k8_required);
    ok = false;
  }
  table.print(std::cout, "R-cube " + std::to_string(grid_side) + "x" +
                             std::to_string(grid_side) + "x" +
                             std::to_string(grid_side) +
                             " warm path (assemble+refactor+solve, n=" +
                             std::to_string(grid.n) + ")");

  // --- Gate 3: scheduler tally identity across batch widths and thread
  // counts on a real sparse-backend circuit problem. ---
  const int per_candidate = smoke ? 24 : 60;
  const int rounds = 2;
  bool tallies_ok = true;
  const std::vector<long long> reference =
      circuit_tallies(/*batch=*/1, /*workers=*/1, per_candidate, rounds,
                      options.seed);
  for (int batch : {2, 8}) {
    for (int workers : {1, 4}) {
      const std::vector<long long> tallies =
          circuit_tallies(batch, workers, per_candidate, rounds, options.seed);
      if (tallies != reference) {
        std::fprintf(stderr,
                     "FAIL circuit tallies at batch=%d workers=%d differ "
                     "from scalar single-thread reference\n",
                     batch, workers);
        tallies_ok = false;
      }
    }
  }
  ok = ok && tallies_ok;

  // --- Gate 4: lockstep batched transient vs per-lane scalar transients
  // at K=8 -- bit-identical waveforms and >= 1.8x throughput. ---
  const int tran_side = smoke ? 24 : 28;
  spice::Netlist ladder = tran_grid(tran_side);
  const int tran_num_resistors = 1 + 2 * tran_side * (tran_side - 1);
  const int tran_num_caps = tran_side * tran_side;
  // The per-lane activation runs once per lane per lockstep Newton round
  // (model cards must be in lane state before stamping), so it perturbs a
  // bounded device subset the way sample model cards touch a handful of
  // process parameters -- not every device in the circuit.
  const int tran_num_perturbed_r = std::min(tran_num_resistors, 33);
  const int tran_num_perturbed_c = std::min(tran_num_caps, 32);
  auto perturb_ladder = [&](std::size_t lane) {
    for (int s = 1; s < tran_num_perturbed_r; ++s) {
      ladder.resistor(s).resistance =
          1e3 *
          (1.0 + 0.07 * static_cast<double>(
                            (lane * 7 + static_cast<std::size_t>(s)) % 5));
    }
    for (int s = 0; s < tran_num_perturbed_c; ++s) {
      ladder.capacitor(s).capacitance =
          1e-12 * (1.0 + 0.05 * static_cast<double>(lane % 3));
    }
  };
  spice::TranSolver tran(ladder, spice::SolverBackend::kSparse);
  spice::DcSolver tran_dc(ladder, spice::SolverBackend::kSparse);
  spice::TranOptions tran_options;
  tran_options.t_stop = smoke ? 40e-9 : 50e-9;
  const std::size_t tran_lanes = 8;
  std::vector<std::vector<double>> tran_ops(tran_lanes);
  std::vector<std::vector<double>> tran_ref_time(tran_lanes),
      tran_ref_v(tran_lanes);
  const std::size_t tran_stride =
      static_cast<std::size_t>(ladder.num_nodes()) + 1;
  bool tran_identical = true;
  double tran_scalar_s = 1e300, tran_batch_s = 1e300;
  for (std::size_t l = 0; l < tran_lanes; ++l) {
    perturb_ladder(l);
    std::vector<double> sol(tran_dc.layout().size(), 0.0);
    if (tran_dc.solve({}, &sol) != spice::SolveStatus::kOk) {
      std::fprintf(stderr, "FAIL transient workload DC solve (lane %zu)\n", l);
      return 1;
    }
    tran_ops[l] = std::move(sol);
  }
  for (int rep = 0; rep < timing_reps; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t l = 0; l < tran_lanes; ++l) {
      perturb_ladder(l);
      if (tran.run(tran_options, &tran_ops[l]) != spice::SolveStatus::kOk) {
        std::fprintf(stderr, "FAIL scalar transient (lane %zu)\n", l);
        return 1;
      }
      if (rep == 0) {
        tran_ref_time[l] = tran.time();
        tran_ref_v[l].resize(tran.num_points() * tran_stride);
        for (std::size_t k = 0; k < tran.num_points(); ++k) {
          for (std::size_t node = 0; node < tran_stride; ++node) {
            tran_ref_v[l][k * tran_stride + node] =
                tran.voltage(k, static_cast<spice::NodeId>(node));
          }
        }
      }
    }
    tran_scalar_s = std::min(tran_scalar_s, seconds_since(start));
  }
  for (int rep = 0; rep < timing_reps; ++rep) {
    std::vector<spice::TranLaneResult> results;
    const auto start = std::chrono::steady_clock::now();
    if (!tran.run_batch(tran_options, tran_lanes,
                        [&](std::size_t l) { perturb_ladder(l); }, tran_ops,
                        &results)) {
      std::fprintf(stderr, "FAIL batched transient demoted unexpectedly\n");
      return 1;
    }
    tran_batch_s = std::min(tran_batch_s, seconds_since(start));
    if (rep == 0) {
      for (std::size_t l = 0; l < tran_lanes; ++l) {
        if (results[l].status != spice::SolveStatus::kOk ||
            !bitwise_equal(results[l].time, tran_ref_time[l]) ||
            !bitwise_equal(results[l].node_v, tran_ref_v[l])) {
          std::fprintf(stderr,
                       "FAIL batched transient lane %zu differs bitwise "
                       "from its scalar run\n",
                       l);
          tran_identical = false;
        }
      }
    }
  }
  const double tran_speedup = tran_scalar_s / tran_batch_s;
  ok = ok && tran_identical;
  if (tran_speedup < 1.8) {
    std::fprintf(stderr,
                 "FAIL batched transient K=8 speedup %.2fx < 1.8x over "
                 "per-lane scalar transients\n",
                 tran_speedup);
    ok = false;
  }
  {
    Table tran_table({"path", "time/8 lanes", "speedup"});
    char t0[64], t1[64], sp[32];
    std::snprintf(t0, sizeof(t0), "%.3g s", tran_scalar_s);
    std::snprintf(t1, sizeof(t1), "%.3g s", tran_batch_s);
    std::snprintf(sp, sizeof(sp), "%.2fx", tran_speedup);
    tran_table.add_row({"per-lane scalar run()", t0, "1.0x"});
    tran_table.add_row({"lockstep run_batch()", t1, sp});
    tran_table.print(std::cout,
                     "RC-grid transient, " + std::to_string(tran_side) + "x" +
                         std::to_string(tran_side) + ", K=8 (" +
                         (tran_identical ? "bit-identical" : "MISMATCH") +
                         ")");
  }

  // --- Gate 5: observability overhead -- with span tracing and timing
  // histograms armed (the --trace/--metrics/daemon configuration), the K=8
  // batched warm path must stay within 3% of its disarmed throughput.
  // Counters are always-on and therefore inside both measurements; this
  // gate bounds the cost of the gated instruments (clock reads, histogram
  // records, trace-ring appends) on the solver hot path.  Median of
  // per-rep paired ratios, same drift-cancelling scheme as Gate 2.
  double obs_overhead = 1.0;
  {
    std::vector<double> ratios(timing_reps);
    for (int rep = 0; rep < timing_reps; ++rep) {
      obs::set_timing_enabled(false);
      obs::set_trace_enabled(false);
      const double off_s =
          run_batched(grid, sys, 2000, timing_samples, 8, nullptr);
      obs::set_timing_enabled(true);
      obs::set_trace_enabled(true);
      const double on_s =
          run_batched(grid, sys, 2000, timing_samples, 8, nullptr);
      ratios[rep] = on_s / off_s;
    }
    obs::set_timing_enabled(false);
    obs::set_trace_enabled(false);
    obs::trace_reset();
    std::sort(ratios.begin(), ratios.end());
    obs_overhead = ratios[ratios.size() / 2];
    if (obs_overhead > 1.03) {
      std::fprintf(stderr,
                   "FAIL observability overhead %.4fx > 1.03x on the K=8 "
                   "batched warm path with tracing+timing armed\n",
                   obs_overhead);
      ok = false;
    }
    Table obs_table({"instrumentation", "overhead"});
    char ov[32];
    std::snprintf(ov, sizeof(ov), "%.4fx", obs_overhead);
    obs_table.add_row({"tracing + timing armed vs disarmed", ov});
    obs_table.print(std::cout, "Observability overhead, K=8 warm path");
  }

  std::cout << "gates: bitwise per-sample identity (K=2/4/8), >=" << (k8_wide_width >= 4 ? 3 : 2)
            << "x samples/sec at K=8 (kernel width " << k8_wide_width
            << "), scheduler tallies independent of batch width and thread "
               "count ("
            << (tallies_ok ? "ok" : "FAIL")
            << "), batched transient bit-identical and >=1.8x at K=8 ("
            << (tran_identical && tran_speedup >= 1.8 ? "ok" : "FAIL")
            << "), observability overhead <=1.03x ("
            << (obs_overhead <= 1.03 ? "ok" : "FAIL") << ")\n";

  char tail[320];
  std::snprintf(tail, sizeof(tail),
                ",\"k8_speedup\":%.2f,\"k8_kernel_width\":%d,"
                "\"tran_speedup\":%.2f,\"tran_identical\":%s,"
                "\"tally_identical\":%s,\"obs_overhead\":%.4f",
                k8_wide_speedup, k8_wide_width, tran_speedup,
                tran_identical ? "true" : "false",
                tallies_ok ? "true" : "false", obs_overhead);
  if (!bench::write_bench_json(
          options.json, "bench_micro_batch",
          "\"grid_n\":" + std::to_string(grid.n) + ",\"widths\":[" +
              json_rows + "]" + tail)) {
    return 1;
  }
  return ok ? 0 : 1;
}

// Micro benchmark for the batched (SoA) sample kernels: the MNA warm path
// -- slot-replay assembly, pivot-order-fixed numeric refactorization, and
// forward/back substitution -- run K Monte-Carlo samples at a time through
// MnaSystem's batch mode instead of one at a time.
//
// Workload: an RC-grid MNA system (real 2-D fill-in, ~1.6k unknowns at
// default scale) whose edge conductances are perturbed per sample, exactly
// like Monte-Carlo model-card perturbations perturb the amplifier systems:
// the pattern is fixed, only slot values change.  The scalar baseline pays
// the full symbolic traversal (index chasing, one branch per nonzero) per
// sample; the batched path pays it once per K samples and runs the lane
// arithmetic over contiguous SoA slices the compiler can vectorize.
//
// Doubles as a correctness gate, because the whole point of the batch mode
// is that it is a pure throughput knob:
//   - per-sample solutions must be BIT-identical to the scalar path for
//     K in {2, 4, 8} (the all-lanes-nonzero fast path must not flip signed
//     zeros, lanes must never mix);
//   - EvalScheduler yield tallies over a sparse-backend circuit problem
//     must be identical across batch widths and thread counts;
//   - samples/sec at K=8 must be >= 2x the scalar warm path (the
//     acceptance gate for the SoA kernels).
// Violations exit non-zero so CI fails.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_support.hpp"
#include "src/circuits/circuit_yield.hpp"
#include "src/circuits/topology.hpp"
#include "src/common/parallel.hpp"
#include "src/common/table.hpp"
#include "src/mc/candidate_yield.hpp"
#include "src/mc/eval_scheduler.hpp"
#include "src/spice/mna.hpp"
#include "src/stats/rng.hpp"

namespace {

using namespace moheco;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// RC-grid MNA workload with per-sample conductance perturbations.  Nodes
/// are matrix indices directly (no ground elision needed: every edge stamp
/// is the full 4-entry stencil) and the stamp sequence is identical for
/// every sample, as MnaSystem's slot replay requires.
struct GridWorkload {
  int rows = 0, cols = 0;
  std::vector<std::pair<int, int>> edges;
  std::size_t n = 0;

  explicit GridWorkload(int r, int c) : rows(r), cols(c) {
    n = static_cast<std::size_t>(r) * static_cast<std::size_t>(c);
    for (int i = 0; i < r; ++i) {
      for (int j = 0; j < c; ++j) {
        const int node = i * c + j;
        if (j + 1 < c) edges.push_back({node, node + 1});
        if (i + 1 < r) edges.push_back({node, node + c});
      }
    }
  }

  /// Deterministic per-(sample, edge) conductance: base grid conductance
  /// with a few-percent "process" perturbation from a cheap hash, the same
  /// for the scalar and batched paths.
  static double conductance(std::uint64_t sample, std::uint64_t edge) {
    std::uint64_t z = (sample * 0x9E3779B97F4A7C15ull) ^
                      (edge * 0xBF58476D1CE4E5B9ull) ^ 0x94D049BB133111EBull;
    z ^= z >> 27;
    z *= 0x2545F4914F6CDD1Dull;
    z ^= z >> 31;
    const double u =
        static_cast<double>(z >> 11) * (1.0 / 9007199254740992.0);  // [0, 1)
    return 1e-3 * (1.0 + 0.05 * (2.0 * u - 1.0));
  }

  /// One sample's stamp sequence (identical order every time).  The rhs is
  /// a single corner injection, so it is almost all zeros -- which drives
  /// the substitution kernels through their zero-skip/signed-zero paths.
  void stamp(spice::MnaSystem<double>& sys, std::uint64_t sample) const {
    for (std::size_t e = 0; e < edges.size(); ++e) {
      const auto [a, b] = edges[e];
      const double g = conductance(sample, e);
      sys.add(a, a, g);
      sys.add(b, b, g);
      sys.add(a, b, -g);
      sys.add(b, a, -g);
    }
    for (std::size_t i = 0; i < n; ++i) {
      sys.add(static_cast<int>(i), static_cast<int>(i), 1e-9);
    }
    sys.rhs_add(0, 1.0);
    sys.rhs_add(static_cast<int>(n) - 1, -0.25);
  }
};

/// Scalar warm path: assemble (slot replay) + refactor + solve, one sample
/// at a time.  `out` (optional) receives each sample's solution.
double run_scalar(const GridWorkload& grid, spice::MnaSystem<double>& sys,
                  std::uint64_t first, std::uint64_t count,
                  std::vector<std::vector<double>>* out) {
  const auto start = std::chrono::steady_clock::now();
  for (std::uint64_t s = first; s < first + count; ++s) {
    sys.begin_assembly();
    grid.stamp(sys, s);
    sys.end_assembly();
    std::vector<double> x = sys.rhs();
    if (!sys.factor()) {
      std::fprintf(stderr, "FAIL scalar factor() on sample %llu\n",
                   static_cast<unsigned long long>(s));
      std::exit(1);
    }
    sys.solve(x);
    if (out != nullptr) out->push_back(std::move(x));
  }
  return seconds_since(start);
}

/// Batched warm path: K lanes per begin_batch round, same samples.
double run_batched(const GridWorkload& grid, spice::MnaSystem<double>& sys,
                   std::uint64_t first, std::uint64_t count, std::size_t k,
                   std::vector<std::vector<double>>* out) {
  const auto start = std::chrono::steady_clock::now();
  for (std::uint64_t s = first; s < first + count; s += k) {
    const std::size_t lanes =
        static_cast<std::size_t>(std::min<std::uint64_t>(k, first + count - s));
    sys.begin_batch(lanes);
    for (std::size_t l = 0; l < lanes; ++l) {
      sys.begin_lane(l);
      grid.stamp(sys, s + l);
      sys.end_lane();
    }
    if (!sys.factor_batch()) {
      std::fprintf(stderr, "FAIL factor_batch() at sample %llu (K=%zu)\n",
                   static_cast<unsigned long long>(s), lanes);
      std::exit(1);
    }
    std::vector<double> xb = sys.batch_rhs();
    sys.solve_batch(xb);
    sys.end_batch();
    if (out != nullptr) {
      for (std::size_t l = 0; l < lanes; ++l) {
        std::vector<double> x(grid.n);
        for (std::size_t i = 0; i < grid.n; ++i) x[i] = xb[i * lanes + l];
        out->push_back(std::move(x));
      }
    }
  }
  return seconds_since(start);
}

bool bitwise_equal(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

/// EvalScheduler yield tallies for a sparse-backend circuit problem at one
/// (batch width, thread count) combination.
std::vector<long long> circuit_tallies(int batch, int workers,
                                       int per_candidate, int rounds,
                                       std::uint64_t seed) {
  circuits::EvalOptions eval;
  eval.backend = spice::SolverBackend::kSparse;
  eval.batch = batch;
  const circuits::CircuitYieldProblem problem(
      circuits::make_five_transistor_ota(), eval);

  ThreadPool pool(workers);
  mc::EvalScheduler scheduler(pool, {});
  std::vector<std::unique_ptr<mc::CandidateYield>> candidates;
  const std::size_t nvars = problem.num_design_vars();
  for (int c = 0; c < 3; ++c) {
    std::vector<double> x(nvars);
    const double t = 0.35 + 0.15 * c;
    for (std::size_t i = 0; i < nvars; ++i) {
      x[i] = problem.lower_bound(i) +
             t * (problem.upper_bound(i) - problem.lower_bound(i));
    }
    candidates.push_back(std::make_unique<mc::CandidateYield>(
        problem, x,
        stats::derive_seed(seed, 0xBA7C, static_cast<std::uint64_t>(c))));
  }
  mc::SimCounter sims;
  for (int round = 0; round < rounds; ++round) {
    for (auto& c : candidates) {
      scheduler.enqueue(*c, per_candidate, mc::McOptions{});
    }
    scheduler.flush(sims, mc::SimPhase::kOcba);
  }
  std::vector<long long> tallies;
  for (const auto& c : candidates) tallies.push_back(c->passes());
  return tallies;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions options = bench::bench_prologue(
      argc, argv,
      "Micro: batched SoA sample kernels (assemble+refactor+solve K lanes "
      "at once) vs the scalar warm path");
  const bool smoke = options.scale == BenchScale::kSmoke;

  const int grid_side = smoke ? 24 : 40;
  const GridWorkload grid(grid_side, grid_side);
  const std::uint64_t identity_samples = smoke ? 24 : 48;
  const std::uint64_t timing_samples = smoke ? 48 : 160;
  const int timing_reps = smoke ? 2 : 3;

  spice::MnaSystem<double> sys;
  sys.reset(grid.n, spice::SolverBackend::kSparse);
  // Capture the pattern and the symbolic analysis (one cold factorization);
  // everything after this is the warm path both modes share.
  run_scalar(grid, sys, /*first=*/0, /*count=*/1, nullptr);

  bool ok = true;

  // --- Gate 1: bitwise per-sample identity, K in {2, 4, 8}. ---
  std::vector<std::vector<double>> scalar_solutions;
  run_scalar(grid, sys, 1, identity_samples, &scalar_solutions);
  for (std::size_t k : {std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
    std::vector<std::vector<double>> batched_solutions;
    run_batched(grid, sys, 1, identity_samples, k, &batched_solutions);
    for (std::uint64_t s = 0; s < identity_samples; ++s) {
      if (!bitwise_equal(scalar_solutions[s], batched_solutions[s])) {
        std::fprintf(stderr,
                     "FAIL K=%zu: sample %llu solution differs bitwise from "
                     "the scalar path\n",
                     k, static_cast<unsigned long long>(s));
        ok = false;
        break;
      }
    }
  }

  // --- Gate 2: >= 2x samples/sec at K=8 vs the scalar warm path. ---
  Table table({"path", "samples/s", "speedup"});
  double scalar_sps = 0.0;
  {
    double best = 1e300;
    for (int rep = 0; rep < timing_reps; ++rep) {
      best = std::min(best,
                      run_scalar(grid, sys, 1000, timing_samples, nullptr));
    }
    scalar_sps = static_cast<double>(timing_samples) / best;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3g", scalar_sps);
  table.add_row({"scalar (K=1)", buf, "1.0x"});
  std::string json_rows;
  {
    char row[160];
    std::snprintf(row, sizeof(row), "{\"k\":1,\"sps\":%.1f,\"speedup\":1.0}",
                  scalar_sps);
    json_rows += row;
  }
  double k8_speedup = 0.0;
  for (std::size_t k : {std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
    double best = 1e300;
    for (int rep = 0; rep < timing_reps; ++rep) {
      best = std::min(best,
                      run_batched(grid, sys, 1000, timing_samples, k, nullptr));
    }
    const double sps = static_cast<double>(timing_samples) / best;
    const double speedup = sps / scalar_sps;
    if (k == 8) k8_speedup = speedup;
    char sp[32];
    std::snprintf(buf, sizeof(buf), "%.3g", sps);
    std::snprintf(sp, sizeof(sp), "%.2fx", speedup);
    table.add_row({"batched K=" + std::to_string(k), buf, sp});
    char row[160];
    std::snprintf(row, sizeof(row),
                  ",{\"k\":%zu,\"sps\":%.1f,\"speedup\":%.2f}", k, sps,
                  speedup);
    json_rows += row;
  }
  if (k8_speedup < 2.0) {
    std::fprintf(stderr,
                 "FAIL batched K=8 speedup %.2fx < 2x over the scalar warm "
                 "path\n",
                 k8_speedup);
    ok = false;
  }
  table.print(std::cout, "RC-grid " + std::to_string(grid_side) + "x" +
                             std::to_string(grid_side) +
                             " warm path (assemble+refactor+solve, n=" +
                             std::to_string(grid.n) + ")");

  // --- Gate 3: scheduler tally identity across batch widths and thread
  // counts on a real sparse-backend circuit problem. ---
  const int per_candidate = smoke ? 24 : 60;
  const int rounds = 2;
  bool tallies_ok = true;
  const std::vector<long long> reference =
      circuit_tallies(/*batch=*/1, /*workers=*/1, per_candidate, rounds,
                      options.seed);
  for (int batch : {2, 8}) {
    for (int workers : {1, 4}) {
      const std::vector<long long> tallies =
          circuit_tallies(batch, workers, per_candidate, rounds, options.seed);
      if (tallies != reference) {
        std::fprintf(stderr,
                     "FAIL circuit tallies at batch=%d workers=%d differ "
                     "from scalar single-thread reference\n",
                     batch, workers);
        tallies_ok = false;
      }
    }
  }
  ok = ok && tallies_ok;
  std::cout << "gates: bitwise per-sample identity (K=2/4/8), >=2x "
               "samples/sec at K=8, scheduler tallies independent of batch "
               "width and thread count ("
            << (tallies_ok ? "ok" : "FAIL") << ")\n";

  if (!bench::write_bench_json(
          options.json, "bench_micro_batch",
          "\"grid_n\":" + std::to_string(grid.n) + ",\"widths\":[" +
              json_rows + "],\"k8_speedup\":" +
              std::to_string(k8_speedup) + ",\"tally_identical\":" +
              (tallies_ok ? std::string("true") : std::string("false")))) {
    return 1;
  }
  return ok ? 0 : 1;
}

#include "bench/bench_support.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>

#include "src/common/log.hpp"
#include "src/linalg/simd_caps.hpp"
#include "src/obs/build_info.hpp"
#include "src/common/parallel.hpp"
#include "src/mc/candidate_yield.hpp"
#include "src/mc/eval_scheduler.hpp"
#include "src/stats/rng.hpp"
#include "src/stats/summary.hpp"

namespace moheco::bench {
namespace {

MethodSpec fixed_budget_method(const std::string& name, int budget) {
  return {name, [budget](core::MohecoOptions& o) {
            o.use_ocba = false;
            o.use_memetic = false;
            o.fixed_budget = budget;
          }};
}

}  // namespace

std::vector<MethodSpec> example1_methods() {
  return {
      fixed_budget_method("300 simulations (AS+LHS)", 300),
      fixed_budget_method("500 simulations (AS+LHS)", 500),
      fixed_budget_method("700 simulations (AS+LHS)", 700),
      {"OO+AS+LHS", [](core::MohecoOptions& o) { o.use_memetic = false; }},
      {"MOHECO", [](core::MohecoOptions&) {}},
  };
}

std::vector<MethodSpec> example2_methods() {
  return {
      fixed_budget_method("300 simulations (AS+LHS)", 300),
      fixed_budget_method("500 simulations (AS+LHS)", 500),
      {"MOHECO", [](core::MohecoOptions&) {}},
  };
}

core::MohecoOptions base_options(const BenchOptions& bench) {
  core::MohecoOptions options;
  // Paper settings: population 50, CR 0.8, F 0.8, n0 = 15, sim_avg = 35,
  // n_max = 500, stop at 100% yield or 20 stagnant generations.
  options.population = bench.scale == BenchScale::kFull ? 50 : 24;
  options.max_generations = bench.scale == BenchScale::kFull ? 200 : 80;
  options.threads = bench.threads;
  return options;
}

circuits::EvalOptions eval_options(const BenchOptions& bench) {
  circuits::EvalOptions options;
  options.transient = bench.transient;
  options.batch = bench.batch;
  return options;
}

StudyData run_example_study(const std::string& study_key,
                            const mc::YieldProblem& problem,
                            const std::vector<MethodSpec>& methods,
                            const BenchOptions& bench) {
  ResultsCache cache = ResultsCache::default_cache();
  const std::string key = study_key + "_" + describe(bench);
  StudyData data;
  if (auto cached = cache.load(key)) {
    bool complete = true;
    for (const MethodSpec& m : methods) {
      if (!cached->count("dev:" + m.name) || !cached->count("sims:" + m.name)) {
        complete = false;
        break;
      }
    }
    if (complete) {
      for (const MethodSpec& m : methods) {
        data.deviations[m.name] = cached->at("dev:" + m.name);
        data.simulations[m.name] = cached->at("sims:" + m.name);
      }
      std::fprintf(stderr, "[bench] loaded study '%s' from cache\n",
                   key.c_str());
      return data;
    }
  }

  // One scheduler for every reference run of the study: repeated estimates
  // of the same design point (across methods or runs) revive their sessions
  // from the warm-start blob store instead of re-running the nominal
  // measurement.
  ThreadPool reference_pool(bench.threads);
  mc::EvalScheduler reference_scheduler(reference_pool);
  for (const MethodSpec& method : methods) {
    std::vector<double> deviations, simulations;
    for (int run = 0; run < bench.runs; ++run) {
      core::MohecoOptions options = base_options(bench);
      options.seed = stats::derive_seed(bench.seed, 0xB, run);
      method.configure(options);
      core::MohecoOptimizer optimizer(problem, options);
      const core::MohecoResult result = optimizer.run();
      double deviation = 1.0;
      if (result.best.fitness.feasible) {
        const double reference = mc::reference_yield(
            problem, result.best.x, bench.reference_samples,
            stats::derive_seed(bench.seed, 0xFEF, run), reference_scheduler);
        deviation = std::fabs(result.best.fitness.yield - reference);
      }
      deviations.push_back(deviation);
      simulations.push_back(static_cast<double>(result.total_simulations));
      std::fprintf(stderr,
                   "[bench] %-26s run %d: yield %.4f dev %.4f sims %lld\n",
                   method.name.c_str(), run, result.best.fitness.yield,
                   deviation, result.total_simulations);
    }
    data.deviations[method.name] = std::move(deviations);
    data.simulations[method.name] = std::move(simulations);
  }

  ResultMap to_store;
  for (const MethodSpec& m : methods) {
    to_store["dev:" + m.name] = data.deviations[m.name];
    to_store["sims:" + m.name] = data.simulations[m.name];
  }
  cache.store(key, to_store);
  return data;
}

void print_accuracy_table(const StudyData& data,
                          const std::vector<MethodSpec>& methods,
                          const std::string& title) {
  Table table({"methods", "best", "worst", "average", "variance"});
  for (const MethodSpec& m : methods) {
    const stats::Summary s = stats::summarize(data.deviations.at(m.name));
    table.add_row({m.name, format_percent(s.best), format_percent(s.worst),
                   format_percent(s.mean), format_sig(s.variance, 2)});
  }
  table.print(std::cout, title);
}

void print_cost_table(const StudyData& data,
                      const std::vector<MethodSpec>& methods,
                      const std::string& title) {
  Table table({"methods", "best", "worst", "average", "variance",
               "vs AS+LHS@500"});
  double baseline = 0.0;
  for (const MethodSpec& m : methods) {
    if (m.name.find("500") != std::string::npos) {
      baseline = stats::summarize(data.simulations.at(m.name)).mean;
    }
  }
  for (const MethodSpec& m : methods) {
    const stats::Summary s = stats::summarize(data.simulations.at(m.name));
    char ratio[64] = "-";
    if (baseline > 0.0) {
      std::snprintf(ratio, sizeof(ratio), "%.2f%% (1/%.1f)",
                    100.0 * s.mean / baseline, baseline / s.mean);
    }
    table.add_row({m.name, format_sig(s.best, 6), format_sig(s.worst, 6),
                   format_sig(s.mean, 6), format_sig(s.variance, 2), ratio});
  }
  table.print(std::cout, title);
}

BenchOptions bench_prologue(int argc, char** argv, const std::string& name) {
  BenchOptions options;
  try {
    options = parse_bench_options(argc, argv);
  } catch (const InvalidArgument& e) {
    std::fprintf(stderr, "%s: %s\n", name.c_str(), e.what());
    std::exit(2);
  }
  std::cout << "=== " << name << " (" << describe(options) << ") ===\n";
  if (options.scale != BenchScale::kFull) {
    std::cout << "note: scaled-down protocol; set MOHECO_SCALE=full for the "
                 "paper-scale protocol (10 runs, 50k reference MC)\n";
  }
  return options;
}

std::string json_sim_breakdown(const mc::SimBreakdown& breakdown) {
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer),
                "{\"screen\":%lld,\"stage1\":%lld,\"ocba\":%lld,"
                "\"stage2\":%lld,\"other\":%lld,\"total\":%lld}",
                breakdown.screen, breakdown.stage1, breakdown.ocba,
                breakdown.stage2, breakdown.other, breakdown.total());
  return buffer;
}

std::string json_sched_breakdown(const mc::SchedBreakdown& breakdown) {
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer),
                "{\"session_hits\":%lld,\"cold_opens\":%lld,"
                "\"warm_opens\":%lld,\"affinity_hits\":%lld,"
                "\"steals\":%lld,\"migrations\":%lld}",
                breakdown.session_hits, breakdown.cold_opens,
                breakdown.warm_opens, breakdown.affinity_hits,
                breakdown.steals, breakdown.migrations);
  return buffer;
}

std::string json_simd_caps() {
  const linalg::SimdCaps& caps = linalg::simd_caps();
  std::string json = "{\"avx2\":";
  json += caps.avx2 ? "true" : "false";
  json += ",\"avx512f\":";
  json += caps.avx512f ? "true" : "false";
  json += ",\"max_lane_width\":" + std::to_string(caps.max_lane_width) + "}";
  return json;
}

bool write_bench_json(const std::string& path, const std::string& bench,
                      const std::string& body) {
  if (path.empty()) return true;
  std::ofstream out(path);
  // Every bench JSON carries the host's SIMD capability header: perf
  // numbers are only comparable between runs whose kernels dispatched the
  // same vector width (CI's regression gate checks this before comparing).
  // The build identity header pins which binary produced the numbers
  // (version, compiler, SIMD build flag) for artifact forensics.
  out << "{\"" << bench << "\":{\"simd\":" << json_simd_caps()
      << ",\"build\":" << obs::build_json() << "," << body << "}}\n";
  out.flush();
  if (!out) {
    std::fprintf(stderr, "failed to write %s\n", path.c_str());
    return false;
  }
  return true;
}

}  // namespace moheco::bench

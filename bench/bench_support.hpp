// Shared harness for the table/figure benches.
//
// The paper's protocol (Section 3.1): run each method several times with
// independent random streams, record (a) the deviation of the reported
// yield from a large reference-MC estimate at the same design point and
// (b) the total number of simulations, then tabulate best/worst/average/
// variance.  Tables 1+2 and Fig. 6 share one study per example, so results
// are memoized in the results cache keyed by (study, scale, seed).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/circuits/evaluator.hpp"
#include "src/common/options.hpp"
#include "src/common/results_cache.hpp"
#include "src/common/table.hpp"
#include "src/core/moheco.hpp"
#include "src/mc/yield_problem.hpp"

namespace moheco::bench {

/// One method row of Tables 1-4.
struct MethodSpec {
  std::string name;
  /// Mutates the base options into this method's configuration.
  std::function<void(core::MohecoOptions&)> configure;
};

/// The paper's method set for example 1 (rows of Tables 1 and 2).
std::vector<MethodSpec> example1_methods();
/// The paper's method set for example 2 (rows of Tables 3 and 4).
std::vector<MethodSpec> example2_methods();

/// Base optimizer options at a given bench scale (population 50 at full
/// scale as in the paper, smaller otherwise).
core::MohecoOptions base_options(const BenchOptions& bench);

/// Circuit-evaluation options implied by the bench flags: --transient turns
/// on the step-bench transient per sample, which also registers the
/// topology's slew-rate / settling-time specs in the yield criterion, and
/// --batch=K selects the SoA evaluation batch width.
circuits::EvalOptions eval_options(const BenchOptions& bench);

struct StudyData {
  /// method name -> per-run |reported - reference| yield deviations.
  ResultMap deviations;
  /// method name -> per-run total simulation counts.
  ResultMap simulations;
};

/// Runs (or loads from cache) the full per-example study: every method,
/// `bench.runs` independent runs, reference-MC deviation per run.
StudyData run_example_study(const std::string& study_key,
                            const mc::YieldProblem& problem,
                            const std::vector<MethodSpec>& methods,
                            const BenchOptions& bench);

/// Prints a Tables-1/3-style accuracy table (best/worst/average/variance of
/// the deviations).
void print_accuracy_table(const StudyData& data,
                          const std::vector<MethodSpec>& methods,
                          const std::string& title);
/// Prints a Tables-2/4-style cost table plus the budget ratios vs the
/// 500-simulation baseline.
void print_cost_table(const StudyData& data,
                      const std::vector<MethodSpec>& methods,
                      const std::string& title);

/// Standard bench prologue: parses options, prints the header.  Returns
/// std::nullopt (and prints usage) when --help was requested.
BenchOptions bench_prologue(int argc, char** argv, const std::string& name);

/// JSON object fragment for a per-phase simulation breakdown:
/// {"screen":N,"stage1":N,"ocba":N,"stage2":N,"other":N,"total":N}.
std::string json_sim_breakdown(const mc::SimBreakdown& breakdown);

/// JSON object fragment for the warm-path scheduler events:
/// {"session_hits":N,"cold_opens":N,"warm_opens":N,"affinity_hits":N,
///  "steals":N,"migrations":N}.
std::string json_sched_breakdown(const mc::SchedBreakdown& breakdown);

/// Writes `body` (a JSON object's contents, without the outer braces) to
/// `path` wrapped as {"<bench>":{<body>}}.  No-op when path is empty;
/// returns false (and warns on stderr) when the write fails.
bool write_bench_json(const std::string& path, const std::string& bench,
                      const std::string& body);

}  // namespace moheco::bench

// Ablation: the stage-2 promotion threshold (paper: estimated yield > 97%
// moves a candidate to the accurate n_max estimation).  Sweeps the
// threshold on example 1 and reports accuracy/cost.
#include <cstdio>
#include <iostream>

#include "bench/bench_support.hpp"
#include "src/circuits/circuit_yield.hpp"
#include "src/mc/candidate_yield.hpp"
#include "src/stats/rng.hpp"
#include "src/stats/summary.hpp"

int main(int argc, char** argv) {
  using namespace moheco;
  const BenchOptions options = bench::bench_prologue(
      argc, argv, "Ablation: stage-2 promotion threshold");
  circuits::CircuitYieldProblem problem(circuits::make_folded_cascode(),
                                        bench::eval_options(options));
  ThreadPool pool(options.threads);

  Table table({"threshold", "avg deviation", "avg sims"});
  for (double threshold : {0.90, 0.97, 0.995}) {
    stats::Welford deviations, sims;
    for (int run = 0; run < options.runs; ++run) {
      core::MohecoOptions o = bench::base_options(options);
      o.seed = stats::derive_seed(options.seed, 0xAB2, run);
      o.estimation.stage2_threshold = threshold;
      const core::MohecoResult r = core::MohecoOptimizer(problem, o).run();
      sims.add(static_cast<double>(r.total_simulations));
      if (!r.best.fitness.feasible) continue;  // no yield to compare
      const double reference = mc::reference_yield(
          problem, r.best.x, options.reference_samples, 78, pool);
      deviations.add(std::fabs(r.best.fitness.yield - reference));
    }
    char t[32], d[32], s[32];
    std::snprintf(t, sizeof(t), "%.1f%%", 100.0 * threshold);
    if (deviations.count() > 0) {
      std::snprintf(d, sizeof(d), "%.2f%%", 100.0 * deviations.mean());
    } else {
      std::snprintf(d, sizeof(d), "n/a");
    }
    std::snprintf(s, sizeof(s), "%.0f", sims.mean());
    table.add_row({t, d, s});
  }
  table.print(std::cout, "Example 1, " + std::to_string(options.runs) +
                             " runs per setting (paper uses 97%)");
  return 0;
}

// Ablation: the stage-2 promotion threshold (paper: estimated yield > 97%
// moves a candidate to the accurate n_max estimation).  Sweeps the
// threshold on example 1 and reports accuracy/cost.
#include <cstdio>
#include <iostream>

#include "bench/bench_support.hpp"
#include "src/circuits/circuit_yield.hpp"
#include "src/mc/candidate_yield.hpp"
#include "src/stats/rng.hpp"
#include "src/stats/summary.hpp"

int main(int argc, char** argv) {
  using namespace moheco;
  const BenchOptions options = bench::bench_prologue(
      argc, argv, "Ablation: stage-2 promotion threshold");
  circuits::CircuitYieldProblem problem(circuits::make_folded_cascode(),
                                        bench::eval_options(options));
  ThreadPool pool(options.threads);

  Table table({"threshold", "avg deviation", "avg sims", "stage2 share"});
  std::string json_rows;
  for (double threshold : {0.90, 0.97, 0.995}) {
    stats::Welford deviations, sims;
    mc::SimBreakdown breakdown;
    for (int run = 0; run < options.runs; ++run) {
      core::MohecoOptions o = bench::base_options(options);
      o.seed = stats::derive_seed(options.seed, 0xAB2, run);
      o.estimation.stage2_threshold = threshold;
      const core::MohecoResult r = core::MohecoOptimizer(problem, o).run();
      sims.add(static_cast<double>(r.total_simulations));
      breakdown += r.sim_breakdown;
      if (!r.best.fitness.feasible) continue;  // no yield to compare
      const double reference = mc::reference_yield(
          problem, r.best.x, options.reference_samples, 78, pool);
      deviations.add(std::fabs(r.best.fitness.yield - reference));
    }
    char t[32], d[32], s[32], s2[32];
    std::snprintf(t, sizeof(t), "%.1f%%", 100.0 * threshold);
    if (deviations.count() > 0) {
      std::snprintf(d, sizeof(d), "%.2f%%", 100.0 * deviations.mean());
    } else {
      std::snprintf(d, sizeof(d), "n/a");
    }
    std::snprintf(s, sizeof(s), "%.0f", sims.mean());
    std::snprintf(s2, sizeof(s2), "%.1f%%",
                  breakdown.total() > 0
                      ? 100.0 * breakdown.stage2 / breakdown.total()
                      : 0.0);
    table.add_row({t, d, s, s2});
    char row[256];
    std::snprintf(row, sizeof(row),
                  "%s{\"threshold\":%.3f,\"avg_deviation\":%.6f,"
                  "\"avg_sims\":%.1f,\"sims\":",
                  json_rows.empty() ? "" : ",", threshold,
                  deviations.count() > 0 ? deviations.mean() : -1.0,
                  sims.mean());
    json_rows += row;
    json_rows += bench::json_sim_breakdown(breakdown);
    json_rows += "}";
  }
  table.print(std::cout, "Example 1, " + std::to_string(options.runs) +
                             " runs per setting (paper uses 97%)");
  if (!bench::write_bench_json(options.json, "bench_ablation_stage2_threshold",
                               "\"thresholds\":[" + json_rows + "]")) {
    return 1;
  }
  return 0;
}

// Micro benchmark for the deck frontend: parse and instantiate throughput
// of spice::DeckParser over exported decks from small amplifier netlists up
// to multi-thousand-device RC grids.
//
// Doubles as a correctness gate: every scenario's deck must round-trip to a
// byte-identical re-export (write -> parse -> instantiate -> write), so a
// formatting or parsing regression fails CI instead of shifting perf rows.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_support.hpp"
#include "src/circuits/topology.hpp"
#include "src/common/table.hpp"
#include "src/spice/deck_parser.hpp"
#include "src/spice/netlist_format.hpp"
#include "src/spice/netlist_gen.hpp"

namespace {

using namespace moheco;

struct Scenario {
  std::string name;
  spice::Netlist netlist;
};

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

std::vector<double> mid_bounds(const circuits::Topology& topology) {
  std::vector<double> x;
  for (const auto& var : topology.design_vars()) {
    x.push_back(0.5 * (var.lo + var.hi));
  }
  return x;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions options = bench::bench_prologue(
      argc, argv, "Micro: SPICE deck parse/instantiate throughput");
  const double min_seconds =
      options.scale == BenchScale::kSmoke ? 0.02 : 0.2;

  std::vector<Scenario> scenarios;
  for (const auto& make :
       {circuits::make_five_transistor_ota, circuits::make_folded_cascode,
        circuits::make_two_stage_telescopic}) {
    const auto topology = make();
    scenarios.push_back(
        {topology->name(), topology->build(mid_bounds(*topology)).netlist});
  }
  {
    spice::GridSpec spec;
    const int side = options.scale == BenchScale::kSmoke ? 16 : 45;
    spec.rows = side;
    spec.cols = side;
    scenarios.push_back({"grid-" + std::to_string(side) + "x" +
                             std::to_string(side),
                         make_rc_grid(spec)});
  }

  Table table({"scenario", "bytes", "devices", "parse us", "MB/s",
               "instantiate us"});
  bool ok = true;
  std::string json_rows;
  for (const Scenario& s : scenarios) {
    const std::string text = spice::to_spice_deck(s.netlist, s.name);

    // Round-trip gate: re-exporting the parsed deck must reproduce the
    // source bytes (title line included).
    const spice::Deck parsed = spice::parse_deck_string(text, s.name);
    if (spice::to_spice_deck(parsed.instantiate(), s.name) != text) {
      std::fprintf(stderr, "FAIL %s: deck round-trip is not byte-identical\n",
                   s.name.c_str());
      ok = false;
    }

    int parses = 0;
    auto start = std::chrono::steady_clock::now();
    double elapsed = 0.0;
    do {
      const spice::Deck deck = spice::parse_deck_string(text, s.name);
      if (deck.devices.empty()) std::exit(1);  // keep the work observable
      ++parses;
      elapsed = seconds_since(start);
    } while (elapsed < min_seconds && parses < 200000);
    const double parse_us = elapsed * 1e6 / parses;
    const double mb_per_s = text.size() / (parse_us * 1e-6) / 1e6;

    int instantiates = 0;
    start = std::chrono::steady_clock::now();
    elapsed = 0.0;
    do {
      const spice::Netlist n = parsed.instantiate();
      if (n.num_nodes() == 0) std::exit(1);
      ++instantiates;
      elapsed = seconds_since(start);
    } while (elapsed < min_seconds && instantiates < 200000);
    const double instantiate_us = elapsed * 1e6 / instantiates;

    const std::size_t devices =
        s.netlist.resistors().size() + s.netlist.capacitors().size() +
        s.netlist.inductors().size() + s.netlist.vsources().size() +
        s.netlist.isources().size() + s.netlist.vcvs().size() +
        s.netlist.vccs().size() + s.netlist.mosfets().size();

    char parse_text[32], mb_text[32], inst_text[32];
    std::snprintf(parse_text, sizeof(parse_text), "%.1f", parse_us);
    std::snprintf(mb_text, sizeof(mb_text), "%.1f", mb_per_s);
    std::snprintf(inst_text, sizeof(inst_text), "%.1f", instantiate_us);
    table.add_row({s.name, std::to_string(text.size()),
                   std::to_string(devices), parse_text, mb_text, inst_text});

    char row[512];
    std::snprintf(row, sizeof(row),
                  "%s{\"name\":\"%s\",\"bytes\":%zu,\"devices\":%zu,"
                  "\"parse_us\":%.2f,\"parse_mb_per_s\":%.2f,"
                  "\"instantiate_us\":%.2f}",
                  json_rows.empty() ? "" : ",", s.name.c_str(), text.size(),
                  devices, parse_us, mb_per_s, instantiate_us);
    json_rows += row;
  }
  table.print(std::cout, "deck parse/instantiate throughput");

  if (!options.json.empty()) {
    std::ofstream out(options.json);
    out << "{\"bench_micro_deck\":{\"scenarios\":[" << json_rows << "]}}\n";
    if (!out) {
      std::fprintf(stderr, "failed to write %s\n", options.json.c_str());
      return 1;
    }
  }
  return ok ? 0 : 1;
}

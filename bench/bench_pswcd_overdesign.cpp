// Section 3.4 of the paper (PSWCD comparison): spec-wise worst-case design
// over-designs because the per-spec worst-case process points cannot occur
// simultaneously.  We quantify it on example 1: optimize with PSWCD
// (minimum power subject to worst-case feasibility) and with MOHECO
// (maximum yield), then compare power and true (reference-MC) yield, and
// show that PSWCD rejects MOHECO's high-yield design.
#include <cstdio>
#include <iostream>

#include "bench/bench_support.hpp"
#include "src/circuits/circuit_yield.hpp"
#include "src/mc/candidate_yield.hpp"
#include "src/wcd/pswcd.hpp"

int main(int argc, char** argv) {
  using namespace moheco;
  const BenchOptions options = bench::bench_prologue(
      argc, argv, "Section 3.4: PSWCD over-design on example 1");
  circuits::CircuitYieldProblem problem(circuits::make_folded_cascode(),
                                        bench::eval_options(options));
  ThreadPool pool(options.threads);

  // MOHECO reference design.
  core::MohecoOptions moheco_options = bench::base_options(options);
  moheco_options.seed = options.seed;
  const core::MohecoResult moheco =
      core::MohecoOptimizer(problem, moheco_options).run();
  const double moheco_yield =
      moheco.best.fitness.feasible
          ? mc::reference_yield(problem, moheco.best.x,
                                options.reference_samples, 99, pool)
          : 0.0;
  const circuits::Performance moheco_perf =
      problem.performance(moheco.best.x, {});

  // PSWCD design.
  wcd::PswcdOptions pswcd_options;
  pswcd_options.threads = options.threads;
  pswcd_options.seed = options.seed;
  pswcd_options.population = moheco_options.population;
  pswcd_options.max_generations =
      options.scale == BenchScale::kFull ? 80 : 50;
  wcd::PswcdOptimizer pswcd(problem, pswcd_options);
  const wcd::PswcdResult wc = pswcd.run();
  const double pswcd_yield =
      wc.best_report.nominal_feasible
          ? mc::reference_yield(problem, wc.best_x,
                                options.reference_samples, 99, pool)
          : 0.0;
  const circuits::Performance pswcd_perf = problem.performance(wc.best_x, {});

  Table table({"method", "wc-feasible", "nominal power", "true yield",
               "simulations"});
  char power[32], yield[32];
  std::snprintf(power, sizeof(power), "%.3f mW", 1e3 * pswcd_perf.power);
  std::snprintf(yield, sizeof(yield), "%.2f%%", 100.0 * pswcd_yield);
  table.add_row({"PSWCD (min power s.t. worst case)",
                 wc.best_report.feasible ? "yes" : "no", power, yield,
                 std::to_string(wc.total_simulations)});
  std::snprintf(power, sizeof(power), "%.3f mW", 1e3 * moheco_perf.power);
  std::snprintf(yield, sizeof(yield), "%.2f%%", 100.0 * moheco_yield);
  const wcd::WorstCaseReport moheco_wc = pswcd.analyze(moheco.best.x);
  table.add_row({"MOHECO (max yield)",
                 moheco_wc.feasible ? "yes" : "no", power, yield,
                 std::to_string(moheco.total_simulations)});
  table.print(std::cout, "PSWCD vs MOHECO on example 1");

  if (!moheco_wc.feasible && moheco_yield > 0.95) {
    std::printf("over-design confirmed: MOHECO's design has %.2f%% true "
                "yield yet PSWCD rejects it (combined worst-case violation "
                "%.3f)\n",
                100.0 * moheco_yield, moheco_wc.worst_violation);
  }
  std::cout << "paper: PSWCD eliminates good designs because separate "
               "per-spec worst cases cannot be reached simultaneously\n";
  return 0;
}

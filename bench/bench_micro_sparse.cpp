// Micro benchmark for the linear-solve backends: assemble + factor + solve
// on generated RC-ladder and RC-grid MNA systems from n=10 to n=2000, dense
// vs sparse, with the sparse numbers split into the one-off first
// factorization (symbolic analysis + fully pivoted factor) and the
// refactor+solve hot path every Newton iteration / MC sample actually pays.
//
// Doubles as a correctness gate: the two backends must agree to 1e-10
// (relative) on every scenario, and at n >= 500 the sparse hot path must
// beat dense factor+solve by >= 5x; violations exit non-zero so CI fails.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_support.hpp"
#include "src/common/table.hpp"
#include "src/spice/dc_solver.hpp"
#include "src/spice/mna.hpp"
#include "src/spice/netlist_gen.hpp"

namespace {

using namespace moheco;
using spice::SolverBackend;

struct Scenario {
  std::string name;
  spice::Netlist netlist;
  bool check_speedup = false;  ///< acceptance gate: sparse >= 5x dense
};

struct BackendResult {
  double ns_per_solve = 0.0;       ///< steady-state assemble+factor+solve
  double first_factor_ns = 0.0;    ///< includes symbolic analysis (sparse)
  std::vector<double> solution;
};

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

BackendResult run_backend(const spice::Netlist& netlist,
                          SolverBackend backend, double min_seconds) {
  const spice::MnaLayout layout(netlist);
  spice::MnaSystem<double> sys;
  sys.reset(layout.size(), backend);
  auto assemble_factor_solve = [&](std::vector<double>* out) {
    sys.begin_assembly();
    spice::Stamper<double> stamper(sys);
    stamp_linear_static(netlist, layout, stamper, /*gmin=*/1e-12,
                        /*source_scale=*/1.0, /*time=*/-1.0);
    sys.end_assembly();
    std::vector<double> x = sys.rhs();
    if (!sys.factor()) {
      std::fprintf(stderr, "factor failed (%s)\n", to_string(backend));
      std::exit(1);
    }
    sys.solve(x);
    if (out != nullptr) *out = std::move(x);
  };

  BackendResult result;
  const auto first_start = std::chrono::steady_clock::now();
  assemble_factor_solve(&result.solution);
  result.first_factor_ns = seconds_since(first_start) * 1e9;

  int iterations = 0;
  const auto start = std::chrono::steady_clock::now();
  double elapsed = 0.0;
  do {
    assemble_factor_solve(nullptr);
    ++iterations;
    elapsed = seconds_since(start);
  } while (elapsed < min_seconds && iterations < 200000);
  result.ns_per_solve = elapsed * 1e9 / iterations;
  return result;
}

std::string format_ns(double ns) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.3g", ns);
  return buffer;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions options = bench::bench_prologue(
      argc, argv, "Micro: dense vs sparse MNA factor+solve scaling");
  const double min_seconds = options.scale == BenchScale::kSmoke ? 0.02 : 0.2;

  std::vector<int> ladder_sizes = {10, 50, 100, 200, 500};
  if (options.scale != BenchScale::kSmoke) {
    ladder_sizes.push_back(1000);
    ladder_sizes.push_back(2000);
  }
  std::vector<Scenario> scenarios;
  for (int n : ladder_sizes) {
    spice::LadderSpec spec;
    spec.sections = n;
    scenarios.push_back({"ladder-" + std::to_string(n), make_rc_ladder(spec),
                         /*check_speedup=*/n >= 500});
  }
  {
    spice::GridSpec spec;
    const int side = options.scale == BenchScale::kSmoke ? 16 : 45;
    spec.rows = side;
    spec.cols = side;
    scenarios.push_back({"grid-" + std::to_string(side) + "x" +
                             std::to_string(side),
                         make_rc_grid(spec), /*check_speedup=*/false});
  }

  Table table({"scenario", "n", "dense ns", "sparse ns", "sparse 1st ns",
               "speedup", "max |dx|"});
  bool ok = true;
  std::string json_rows;
  for (const Scenario& s : scenarios) {
    const spice::MnaLayout layout(s.netlist);
    const BackendResult dense =
        run_backend(s.netlist, SolverBackend::kDense, min_seconds);
    const BackendResult sparse =
        run_backend(s.netlist, SolverBackend::kSparse, min_seconds);

    double max_delta = 0.0;
    for (std::size_t i = 0; i < dense.solution.size(); ++i) {
      const double scale = std::max(1.0, std::fabs(dense.solution[i]));
      max_delta = std::max(
          max_delta, std::fabs(dense.solution[i] - sparse.solution[i]) / scale);
    }
    const double speedup = dense.ns_per_solve / sparse.ns_per_solve;
    if (max_delta > 1e-10) {
      std::fprintf(stderr, "FAIL %s: backends disagree (max delta %.3g)\n",
                   s.name.c_str(), max_delta);
      ok = false;
    }
    if (s.check_speedup && speedup < 5.0) {
      std::fprintf(stderr, "FAIL %s: sparse speedup %.2fx < 5x\n",
                   s.name.c_str(), speedup);
      ok = false;
    }
    char speedup_text[32];
    std::snprintf(speedup_text, sizeof(speedup_text), "%.1fx", speedup);
    table.add_row({s.name, std::to_string(layout.size()),
                   format_ns(dense.ns_per_solve),
                   format_ns(sparse.ns_per_solve),
                   format_ns(sparse.first_factor_ns), speedup_text,
                   format_ns(max_delta)});
    char row[512];
    std::snprintf(row, sizeof(row),
                  "%s{\"name\":\"%s\",\"n\":%zu,\"dense_ns\":%.1f,"
                  "\"sparse_ns\":%.1f,\"sparse_first_factor_ns\":%.1f,"
                  "\"speedup\":%.2f,\"max_rel_delta\":%.3g}",
                  json_rows.empty() ? "" : ",", s.name.c_str(), layout.size(),
                  dense.ns_per_solve, sparse.ns_per_solve,
                  sparse.first_factor_ns, speedup, max_delta);
    json_rows += row;
  }
  table.print(std::cout, "dense vs sparse MNA solve (steady state)");

  if (!options.json.empty()) {
    std::ofstream out(options.json);
    out << "{\"bench_micro_sparse\":{\"scenarios\":[" << json_rows << "]}}\n";
    if (!out) {
      std::fprintf(stderr, "failed to write %s\n", options.json.c_str());
      return 1;
    }
  }
  return ok ? 0 : 1;
}

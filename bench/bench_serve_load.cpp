// bench_serve_load: load + latency harness for the moheco_d serving path.
//
// Spins up an in-process serve::Daemon on a scratch Unix socket and drives
// it through serve::ServeClient exactly like moheco_cli --connect would,
// measuring client-observed submit->terminal latency for the three
// workload classes the daemon distinguishes:
//
//   - fresh:  never-seen deck bytes (unique comment suffix per deck) --
//             a result-cache miss that runs on the shared pool,
//   - repeat: exact resubmits of the fresh decks -- result-cache hits
//             answered without touching the pool,
//   - warm:   the same decks at a new seed -- result misses that revive
//             the warm-start blob snapshot (cheaper nominal opens).
//
// Gates (exit non-zero so CI fails):
//   - every repeat is served from the cache, byte-identical to its fresh
//     run, and the repeat class is >= 10x faster than fresh (p50),
//   - a saturation burst past the admission bound loses no job: every
//     submit ends in exactly one of done / rejected, and the daemon's
//     counters agree with the client's books.
//
// --json=PATH writes the metrics (the CI perf artifact BENCH_serve.json).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_support.hpp"
#include "src/common/json.hpp"
#include "src/common/table.hpp"
#include "src/serve/client.hpp"
#include "src/serve/daemon.hpp"
#include "src/serve/protocol.hpp"

namespace {

using namespace moheco;
using Clock = std::chrono::steady_clock;

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) {
    std::fprintf(stderr, "bench_serve_load: cannot read %s\n", path.c_str());
    std::exit(1);
  }
  std::ostringstream oss;
  oss << in.rdbuf();
  return oss.str();
}

double percentile(std::vector<double> sorted_ms, double p) {
  if (sorted_ms.empty()) return 0.0;
  std::sort(sorted_ms.begin(), sorted_ms.end());
  const double rank = p * static_cast<double>(sorted_ms.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted_ms.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted_ms[lo] + frac * (sorted_ms[hi] - sorted_ms[lo]);
}

struct ClassMetrics {
  std::vector<double> latency_ms;
  double total_s = 0.0;
  double p50() const { return percentile(latency_ms, 0.50); }
  double p90() const { return percentile(latency_ms, 0.90); }
  double p99() const { return percentile(latency_ms, 0.99); }
  double throughput() const {
    return total_s > 0.0 ? static_cast<double>(latency_ms.size()) / total_s
                         : 0.0;
  }
};

/// Submits one job and blocks for its terminal line; returns the terminal.
JsonValue run_job(serve::ServeClient& client, const serve::JobSpec& spec,
                  ClassMetrics* metrics) {
  const auto start = Clock::now();
  client.send(serve::encode_submit(spec, ""));
  while (true) {
    const std::optional<std::string> line = client.read_line();
    if (!line) {
      std::fprintf(stderr, "bench_serve_load: daemon hung up mid-job\n");
      std::exit(1);
    }
    const std::optional<JsonValue> parsed = parse_json(*line);
    if (!parsed) continue;
    if ((*parsed)["op"].as_string() != "result") continue;  // the ack
    const double ms = std::chrono::duration<double, std::milli>(
                          Clock::now() - start)
                          .count();
    if (metrics != nullptr) {
      metrics->latency_ms.push_back(ms);
      metrics->total_s += ms / 1000.0;
    }
    return *parsed;
  }
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions options = bench::bench_prologue(
      argc, argv, "Serve: moheco_d load, latency and cache hit-rate");

  // Scale knobs: number of distinct decks (= fresh jobs) and MC samples
  // per estimate job.  "full" approximates a long-lived daemon's day.
  int decks = 12;
  long long samples = 400;
  int burst = 24;
  if (options.scale == BenchScale::kSmoke) {
    decks = 4;
    samples = 200;
    burst = 8;
  } else if (options.scale == BenchScale::kFull) {
    decks = 64;
    samples = 2000;
    burst = 128;
  }

  const std::string deck =
      read_file(std::string(MOHECO_SOURCE_DIR) + "/examples/five_t_ota.cir");

  char socket_dir[] = "/tmp/moheco_bench_serve_XXXXXX";
  if (::mkdtemp(socket_dir) == nullptr) {
    std::fprintf(stderr, "bench_serve_load: mkdtemp failed\n");
    return 1;
  }
  serve::DaemonOptions daemon_options;
  daemon_options.socket_path = std::string(socket_dir) + "/d.sock";
  daemon_options.threads = options.threads;
  daemon_options.queue_depth = 4;  // small bound so the burst saturates
  daemon_options.result_cache_entries = static_cast<std::size_t>(decks) * 4;
  daemon_options.warm_cache_entries = static_cast<std::size_t>(decks) * 2;
  serve::Daemon daemon(daemon_options);
  daemon.start();

  serve::ServeClient client;
  client.connect(daemon_options.socket_path);

  // Unique deck bytes per fresh job: content-hash identity, so a comment
  // suffix is a brand-new workload even though the circuit is identical.
  std::vector<serve::JobSpec> specs;
  for (int i = 0; i < decks; ++i) {
    serve::JobSpec spec;
    spec.deck_name = "five_t_ota_" + std::to_string(i) + ".cir";
    spec.deck_text = deck + "\n* workload variant " + std::to_string(i) + "\n";
    spec.mode = serve::JobMode::kEstimate;
    spec.estimate_samples = samples;
    spec.moheco.seed = options.seed;
    specs.push_back(std::move(spec));
  }

  ClassMetrics fresh;
  ClassMetrics repeat;
  ClassMetrics warm;
  std::vector<std::string> fresh_bytes;
  bool ok = true;

  for (const serve::JobSpec& spec : specs) {
    const JsonValue t = run_job(client, spec, &fresh);
    ok = ok && t["ok"].as_bool() && !t["cached"].as_bool(true);
    fresh_bytes.push_back(t["result"].raw());
  }
  for (int i = 0; i < decks; ++i) {
    const JsonValue t = run_job(client, specs[i], &repeat);
    if (!t["cached"].as_bool() ||
        t["result"].raw() != fresh_bytes[static_cast<std::size_t>(i)]) {
      std::fprintf(stderr,
                   "FAIL: repeat %d not served byte-identically from cache\n",
                   i);
      ok = false;
    }
  }
  for (serve::JobSpec spec : specs) {
    spec.moheco.seed = options.seed + 1;
    const JsonValue t = run_job(client, spec, &warm);
    ok = ok && t["ok"].as_bool();
    if (!t["warm_hit"].as_bool()) {
      std::fprintf(stderr, "FAIL: warm resubmit missed the blob cache\n");
      ok = false;
    }
  }

  // Saturation burst: fire-and-forget submits far past queue_depth, then
  // account for every single one.  The daemon must answer each with an ack
  // (queued or rejected) and each queued job with exactly one terminal.
  serve::ServeClient burster;
  burster.connect(daemon_options.socket_path);
  for (int i = 0; i < burst; ++i) {
    serve::JobSpec spec = specs[static_cast<std::size_t>(i) % specs.size()];
    spec.moheco.seed = options.seed + 2;  // result-cache misses: real work
    burster.send(serve::encode_submit(spec, "burst-" + std::to_string(i)));
  }
  int accepted = 0;
  int rejected = 0;
  int terminals = 0;
  int done = 0;
  while (accepted + rejected < burst || terminals < accepted) {
    const std::optional<std::string> line = burster.read_line();
    if (!line) break;
    const std::optional<JsonValue> parsed = parse_json(*line);
    if (!parsed) continue;
    const JsonValue& r = *parsed;
    if (r["op"].as_string() == "submit") {
      if (r["ok"].as_bool()) {
        ++accepted;
      } else if (r["code"].as_string() == serve::kErrRejected) {
        ++rejected;
      } else {
        std::fprintf(stderr, "FAIL: unexpected submit answer: %s\n",
                     line->c_str());
        ok = false;
        ++rejected;  // keep the books balanced so the loop terminates
      }
    } else if (r["op"].as_string() == "result") {
      ++terminals;
      if (r["state"].as_string() == "done") ++done;
    }
  }
  if (accepted + rejected != burst || terminals != accepted ||
      done != accepted) {
    std::fprintf(stderr,
                 "FAIL: burst accounting: %d accepted, %d rejected, %d "
                 "terminals, %d done of %d submits\n",
                 accepted, rejected, terminals, done, burst);
    ok = false;
  }
  if (rejected == 0) {
    std::fprintf(stderr,
                 "FAIL: burst of %d never tripped the admission bound %zu\n",
                 burst, daemon_options.queue_depth);
    ok = false;
  }

  const JsonValue stats = client.request(serve::encode_op("stats"));
  const long long result_hits = stats["result_hits"].as_int();
  const long long warm_hit_jobs = stats["warm_hit_jobs"].as_int();

  Table table({"class", "jobs", "p50 ms", "p90 ms", "p99 ms", "jobs/s"});
  const auto row = [&table](const char* name, const ClassMetrics& m) {
    table.add_row({name, std::to_string(m.latency_ms.size()),
                   format_sig(m.p50()), format_sig(m.p90()),
                   format_sig(m.p99()), format_sig(m.throughput())});
  };
  row("fresh", fresh);
  row("repeat(cached)", repeat);
  row("warm(new seed)", warm);
  table.print(std::cout, "moheco_d serving latency");
  std::printf("result cache hits: %lld   warm-hit jobs: %lld\n", result_hits,
              warm_hit_jobs);
  std::printf("burst: %d submits -> %d done, %d rejected (depth %zu)\n",
              burst, done, rejected, daemon_options.queue_depth);

  const double speedup = repeat.p50() > 0.0 ? fresh.p50() / repeat.p50() : 0.0;
  std::printf("repeat speedup (p50): %.1fx\n", speedup);
  if (speedup < 10.0) {
    std::fprintf(stderr, "FAIL: cached repeats only %.1fx faster (need 10x)\n",
                 speedup);
    ok = false;
  }
  if (result_hits < decks) {
    std::fprintf(stderr, "FAIL: expected >= %d result-cache hits, saw %lld\n",
                 decks, result_hits);
    ok = false;
  }
  if (warm_hit_jobs < decks) {
    std::fprintf(stderr, "FAIL: expected >= %d warm-hit jobs, saw %lld\n",
                 decks, warm_hit_jobs);
    ok = false;
  }

  if (!options.json.empty()) {
    JsonObject body;
    const auto add_class = [&body](const char* name, const ClassMetrics& m) {
      JsonObject obj;
      obj.add_int("jobs", static_cast<long long>(m.latency_ms.size()));
      obj.add_number("p50_ms", m.p50());
      obj.add_number("p90_ms", m.p90());
      obj.add_number("p99_ms", m.p99());
      obj.add_number("jobs_per_s", m.throughput());
      body.add_raw(name, obj.str());
    };
    add_class("fresh", fresh);
    add_class("repeat", repeat);
    add_class("warm", warm);
    body.add_number("repeat_speedup_p50", speedup);
    body.add_int("result_hits", result_hits);
    body.add_int("warm_hit_jobs", warm_hit_jobs);
    body.add_int("burst_submits", burst);
    body.add_int("burst_done", done);
    body.add_int("burst_rejected", rejected);
    body.add_bool("pass", ok);
    const std::string inner = body.str();
    bench::write_bench_json(options.json, "serve_load",
                            inner.substr(1, inner.size() - 2));
  }

  daemon.request_stop();
  daemon.wait();
  std::error_code ec;
  std::filesystem::remove_all(socket_dir, ec);
  if (!ok) {
    std::fprintf(stderr, "bench_serve_load: FAILED\n");
    return 1;
  }
  std::printf("bench_serve_load: all gates passed\n");
  return 0;
}

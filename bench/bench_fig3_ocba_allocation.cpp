// Fig. 3 of the paper: how OCBA distributes one generation's budget across
// a typical population.  Candidates with yield > 70% received 55% of the
// simulations while being 36% of the population; candidates with yield
// < 40% received only 13% while being 30% of the population; the total was
// ~11% of what AS+LHS@500 spends on the same population.
#include <cstdio>
#include <iostream>

#include "bench/bench_support.hpp"
#include "src/circuits/circuit_yield.hpp"

int main(int argc, char** argv) {
  using namespace moheco;
  const BenchOptions options = bench::bench_prologue(
      argc, argv, "Fig. 3: OCBA budget allocation in one typical population");
  circuits::CircuitYieldProblem problem(circuits::make_folded_cascode(),
                                        bench::eval_options(options));

  // Run a few generations so the population contains a spread of yields,
  // then inspect the last generation's estimation bookkeeping.
  core::MohecoOptions moheco_options = bench::base_options(options);
  moheco_options.seed = options.seed;
  moheco_options.use_memetic = false;
  core::MohecoOptimizer optimizer(problem, moheco_options);
  const core::MohecoResult result = optimizer.run_generations(30);

  // Pick the generation with the most estimated candidates ("typical").
  const core::GenerationTrace* typical = nullptr;
  for (const auto& g : result.trace) {
    if (typical == nullptr || g.estimated.size() > typical->estimated.size()) {
      typical = &g;
    }
  }
  if (typical == nullptr || typical->estimated.empty()) {
    std::cout << "no feasible candidates encountered; rerun with another "
                 "--seed\n";
    return 0;
  }

  struct Band {
    const char* label;
    double lo, hi;
    int count = 0;
    long long sims = 0;
  };
  Band bands[] = {{"yield > 70%", 0.70, 1.01},
                  {"40% <= yield <= 70%", 0.40, 0.70},
                  {"yield < 40%", -0.01, 0.40}};
  long long total_sims = 0;
  for (const auto& [mean, samples] : typical->estimated) {
    total_sims += samples;
    for (Band& band : bands) {
      if (mean >= band.lo && mean < band.hi) {
        ++band.count;
        band.sims += samples;
        break;
      }
    }
  }
  const auto population = static_cast<int>(typical->estimated.size());

  Table table({"candidate band", "% of population", "% of simulations",
               "avg sims/candidate"});
  for (const Band& band : bands) {
    char pop[32], sims[32], avg[32];
    std::snprintf(pop, sizeof(pop), "%.0f%%",
                  100.0 * band.count / population);
    std::snprintf(sims, sizeof(sims), "%.0f%%",
                  total_sims > 0 ? 100.0 * band.sims / total_sims : 0.0);
    std::snprintf(avg, sizeof(avg), "%.1f",
                  band.count > 0 ? static_cast<double>(band.sims) / band.count
                                 : 0.0);
    table.add_row({band.label, pop, sims, avg});
  }
  table.print(std::cout, "OCBA allocation over the estimated population "
                         "(generation " +
                             std::to_string(typical->generation) + ", " +
                             std::to_string(population) + " candidates)");

  const long long as_lhs_500 = 500LL * population;
  std::printf("total simulations: %lld = %.1f%% of AS+LHS@500 on the same "
              "population (%lld)\n",
              total_sims, 100.0 * total_sims / as_lhs_500, as_lhs_500);
  std::printf("paper: y>70%%: 36%% of pop / 55%% of sims; y<40%%: 30%% of pop "
              "/ 13%% of sims; total ~11%% of AS+LHS\n");
  return 0;
}

// Micro benchmark for the generation-wide EvalScheduler: throughput of the
// two scheduling shapes on identical work.
//
//   - per-candidate: CandidateYield-style refine() per candidate per round
//     (the pre-scheduler shape: every candidate's increment is a pool-wide
//     barrier over a tiny batch).
//   - batched: all candidates' increments of a round enqueued on one
//     EvalScheduler and flushed as a single chunked job set.
//
// Rounds mimic the OCBA stage-1 loop at a small delta (delta = S, i.e. ~1
// sample per candidate per round -- the worst case for barriers) and a
// large delta (16 samples per candidate per round), across worker counts.
//
// Doubles as a correctness gate: both paths must produce bit-identical
// tallies (and identical across worker counts), the batched path must keep
// peak live sessions within sessions_per_worker * workers (instead of the
// S * W the per-candidate path pins), and at 8 workers the batched path
// must beat per-candidate by >= 2x at delta = S; violations exit non-zero
// so CI fails.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_support.hpp"
#include "src/common/parallel.hpp"
#include "src/common/table.hpp"
#include "src/mc/candidate_yield.hpp"
#include "src/mc/eval_scheduler.hpp"
#include "src/stats/rng.hpp"

namespace {

using namespace moheco;

inline void keep(double& value) { asm volatile("" : "+m"(value)); }

/// Quadratic-margin pass/fail with a tunable amount of dependent FP work
/// per evaluation, standing in for a DC+AC circuit solve (~microseconds).
class SpinYieldProblem final : public mc::YieldProblem {
 public:
  SpinYieldProblem(int spin, double sigma) : spin_(spin), sigma_(sigma) {}

  std::size_t num_design_vars() const override { return 1; }
  double lower_bound(std::size_t) const override { return -2.0; }
  double upper_bound(std::size_t) const override { return 2.0; }
  std::size_t noise_dim() const override { return 4; }

  class SpinSession final : public Session {
   public:
    SpinSession(double margin, double sigma, int spin)
        : margin_(margin), sigma_(sigma), spin_(spin) {}

    mc::SampleResult evaluate(std::span<const double> xi) override {
      double w = 0.0;
      for (double z : xi) w += z;
      w *= 0.5;  // sum of 4 iid normals / sqrt(4)
      double acc = margin_ + sigma_ * w;
      for (int k = 0; k < spin_; ++k) acc += acc * 1e-12 + 1e-9;
      keep(acc);
      const double g = margin_ + sigma_ * w;
      mc::SampleResult r;
      r.pass = g >= 0.0;
      r.violation = r.pass ? 0.0 : -g;
      return r;
    }

   private:
    double margin_;
    double sigma_;
    int spin_;
  };

  std::unique_ptr<Session> open(std::span<const double> x) const override {
    return std::make_unique<SpinSession>(1.0 - x[0] * x[0], sigma_, spin_);
  }

 private:
  int spin_;
  double sigma_;
};

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

std::vector<std::unique_ptr<mc::CandidateYield>> make_candidates(
    const mc::YieldProblem& problem, int count, std::uint64_t seed) {
  std::vector<std::unique_ptr<mc::CandidateYield>> candidates;
  candidates.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    const double x = -1.5 + 3.0 * i / std::max(1, count - 1);
    candidates.push_back(std::make_unique<mc::CandidateYield>(
        problem, std::vector<double>{x},
        stats::derive_seed(seed, 0x5C4ED, static_cast<std::uint64_t>(i))));
  }
  return candidates;
}

struct RunResult {
  double samples_per_sec = 0.0;
  std::size_t peak_sessions = 0;
  std::vector<long long> passes;  ///< per-candidate tally (determinism key)
};

/// Runs `rounds` rounds of `per_candidate` samples for every candidate.
/// batched=false replays the pre-scheduler shape: one enqueue+flush (=
/// pool barrier) per candidate per round, sessions pinned for all
/// candidates; batched=true is one flush per round on an LRU-capped cache.
RunResult run_rounds(const mc::YieldProblem& problem, int num_candidates,
                     int rounds, int per_candidate, int workers, bool batched,
                     std::uint64_t seed) {
  ThreadPool pool(workers);
  mc::SchedulerOptions scheduler_options;
  if (!batched) {
    // Pin every candidate's session, as the per-candidate path did.
    scheduler_options.sessions_per_worker = num_candidates;
  }
  mc::EvalScheduler scheduler(pool, scheduler_options);
  auto candidates = make_candidates(problem, num_candidates, seed);
  mc::SimCounter sims;
  const mc::McOptions mc_options;

  const auto start = std::chrono::steady_clock::now();
  for (int round = 0; round < rounds; ++round) {
    if (batched) {
      for (auto& c : candidates) {
        scheduler.enqueue(*c, per_candidate, mc_options);
      }
      scheduler.flush(sims, mc::SimPhase::kOcba);
    } else {
      for (auto& c : candidates) {
        scheduler.refine(*c, per_candidate, sims, mc_options,
                         mc::SimPhase::kOcba);
      }
    }
  }
  const double elapsed = seconds_since(start);

  RunResult result;
  result.samples_per_sec = static_cast<double>(sims.total()) / elapsed;
  result.peak_sessions = scheduler.peak_sessions();
  for (const auto& c : candidates) result.passes.push_back(c->passes());
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions options = bench::bench_prologue(
      argc, argv, "Micro: per-candidate refine vs generation-batched "
                  "EvalScheduler");
  const bool smoke = options.scale == BenchScale::kSmoke;
  const int num_candidates = smoke ? 48 : 64;
  const int spin = 1200;  // a few us per evaluation (DC+AC solve stand-in)
  const SpinYieldProblem problem(spin, 0.5);
  const mc::SchedulerOptions default_options;

  std::vector<int> worker_counts = smoke ? std::vector<int>{2, 8}
                                         : std::vector<int>{1, 2, 4, 8};
  struct Shape {
    const char* name;
    int per_candidate;  ///< samples per candidate per round
    int rounds;
  };
  const Shape shapes[] = {
      {"delta=S (1/cand/round)", 1, smoke ? 16 : 40},
      {"delta=16S (16/cand/round)", 16, smoke ? 4 : 10},
  };

  Table table({"round shape", "workers", "per-cand samp/s", "batched samp/s",
               "speedup", "peak sessions (batched)", "pinned (per-cand)"});
  bool ok = true;
  std::string json_rows;
  std::vector<long long> reference_passes;  // shared across all runs: the
                                            // tally is worker/path invariant
  for (const Shape& shape : shapes) {
    for (int workers : worker_counts) {
      const RunResult per_candidate =
          run_rounds(problem, num_candidates, shape.rounds,
                     shape.per_candidate, workers, /*batched=*/false,
                     options.seed);
      const RunResult batched =
          run_rounds(problem, num_candidates, shape.rounds,
                     shape.per_candidate, workers, /*batched=*/true,
                     options.seed);

      if (per_candidate.passes != batched.passes) {
        std::fprintf(stderr,
                     "FAIL %s @%d workers: batched tallies differ from "
                     "per-candidate tallies\n",
                     shape.name, workers);
        ok = false;
      }
      if (reference_passes.empty()) reference_passes = batched.passes;
      if (shape.per_candidate == shapes[0].per_candidate &&
          shape.rounds == shapes[0].rounds &&
          batched.passes != reference_passes) {
        std::fprintf(stderr,
                     "FAIL %s @%d workers: tallies depend on worker count\n",
                     shape.name, workers);
        ok = false;
      }
      const std::size_t session_bound = static_cast<std::size_t>(
          default_options.sessions_per_worker * workers);
      if (batched.peak_sessions > session_bound) {
        std::fprintf(stderr,
                     "FAIL %s @%d workers: peak sessions %zu exceeds cache "
                     "bound %zu\n",
                     shape.name, workers, batched.peak_sessions,
                     session_bound);
        ok = false;
      }
      const double speedup =
          batched.samples_per_sec / per_candidate.samples_per_sec;
      if (shape.per_candidate == 1 && workers == 8 && speedup < 2.0) {
        std::fprintf(stderr,
                     "FAIL %s @8 workers: batched speedup %.2fx < 2x\n",
                     shape.name, speedup);
        ok = false;
      }

      char pc[32], ba[32], sp[32];
      std::snprintf(pc, sizeof(pc), "%.3g", per_candidate.samples_per_sec);
      std::snprintf(ba, sizeof(ba), "%.3g", batched.samples_per_sec);
      std::snprintf(sp, sizeof(sp), "%.1fx", speedup);
      table.add_row({shape.name, std::to_string(workers), pc, ba, sp,
                     std::to_string(batched.peak_sessions),
                     std::to_string(num_candidates * workers)});
      char row[512];
      std::snprintf(
          row, sizeof(row),
          "%s{\"shape\":\"%s\",\"workers\":%d,\"candidates\":%d,"
          "\"per_candidate_sps\":%.1f,\"batched_sps\":%.1f,\"speedup\":%.2f,"
          "\"peak_sessions\":%zu,\"session_bound\":%zu,"
          "\"pinned_sessions\":%d}",
          json_rows.empty() ? "" : ",", shape.name, workers, num_candidates,
          per_candidate.samples_per_sec, batched.samples_per_sec, speedup,
          batched.peak_sessions, session_bound, num_candidates * workers);
      json_rows += row;
    }
  }
  table.print(std::cout, "per-candidate refine() vs batched EvalScheduler (" +
                             std::to_string(num_candidates) + " candidates)");
  std::cout << "gates: identical tallies, peak sessions <= cache bound, "
               ">=2x at delta=S with 8 workers\n";

  if (!bench::write_bench_json(options.json, "bench_micro_scheduler",
                               "\"scenarios\":[" + json_rows + "]")) {
    return 1;
  }
  return ok ? 0 : 1;
}

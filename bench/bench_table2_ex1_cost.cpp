// Table 2 of the paper: total number of simulations, example 1.
#include <iostream>

#include "bench/bench_support.hpp"
#include "src/circuits/circuit_yield.hpp"

int main(int argc, char** argv) {
  using namespace moheco;
  const BenchOptions options =
      bench::bench_prologue(argc, argv, "Table 2: example 1 simulation cost");
  circuits::CircuitYieldProblem problem(circuits::make_folded_cascode(),
                                        bench::eval_options(options));
  const auto methods = bench::example1_methods();
  const bench::StudyData data =
      bench::run_example_study("ex1", problem, methods, options);
  bench::print_cost_table(data, methods, "Total number of simulations");
  std::cout << "paper shape: MOHECO ~1/7 (14.06%) and OO+AS+LHS ~1/4.3 "
               "(23.16%) of the AS+LHS@500 budget\n";
  return 0;
}

// Ablation: LHS vs primitive MC (the DOE speedup of Section 2.1).
// Measures the standard deviation of the yield estimator at equal sample
// counts on a fixed example-1 design point.  All reference runs go through
// one EvalScheduler, so repeated estimates of the same design point reuse
// cached sessions (or revive them from the warm-start blob store).
#include <cstdio>
#include <iostream>

#include "bench/bench_support.hpp"
#include "src/circuits/circuit_yield.hpp"
#include "src/mc/candidate_yield.hpp"
#include "src/mc/eval_scheduler.hpp"
#include "src/stats/rng.hpp"
#include "src/stats/summary.hpp"

int main(int argc, char** argv) {
  using namespace moheco;
  const BenchOptions options = bench::bench_prologue(
      argc, argv, "Ablation: LHS vs PMC yield-estimator variance");
  circuits::CircuitYieldProblem problem(circuits::make_folded_cascode(),
                                        bench::eval_options(options));
  ThreadPool pool(options.threads);
  mc::EvalScheduler scheduler(pool);
  mc::SimCounter sims;
  // Find a genuinely marginal design (partial yield) by sweeping the bias
  // current of the known-good sizing downwards; the estimator variance is
  // invisible at yield 0 or 1.
  std::vector<double> x = {260e-6, 105e-6, 160e-6, 160e-6, 100e-6,
                           0.7e-6, 0.5e-6, 1.0e-6, 38e-6,  4.6, 1.9};
  for (double ibias = 38e-6; ibias > 5e-6; ibias -= 2e-6) {
    x[8] = ibias;
    const double y = mc::reference_yield(problem, x, 400, 5, scheduler,
                                         stats::SamplingMethod::kPMC, &sims);
    if (y > 0.30 && y < 0.90) break;
  }
  const int reps = options.scale == BenchScale::kFull ? 60 : 25;

  Table table({"samples", "PMC std dev", "LHS std dev", "variance ratio"});
  std::string json_rows;
  for (long long n : {50LL, 100LL, 300LL}) {
    stats::Welford pmc, lhs;
    const mc::SimBreakdown before = sims.breakdown();
    const mc::SchedBreakdown sched_before = sims.sched_breakdown();
    for (int rep = 0; rep < reps; ++rep) {
      pmc.add(mc::reference_yield(problem, x, n,
                                  stats::derive_seed(options.seed, 1, rep),
                                  scheduler, stats::SamplingMethod::kPMC,
                                  &sims));
      lhs.add(mc::reference_yield(problem, x, n,
                                  stats::derive_seed(options.seed, 2, rep),
                                  scheduler, stats::SamplingMethod::kLHS,
                                  &sims));
    }
    char p[32], l[32], r[32];
    std::snprintf(p, sizeof(p), "%.4f", std::sqrt(pmc.variance()));
    std::snprintf(l, sizeof(l), "%.4f", std::sqrt(lhs.variance()));
    std::snprintf(r, sizeof(r), "%.2fx",
                  lhs.variance() > 0 ? pmc.variance() / lhs.variance() : 0.0);
    table.add_row({std::to_string(n), p, l, r});

    mc::SimBreakdown row_sims = sims.breakdown();
    mc::SchedBreakdown row_sched = sims.sched_breakdown();
    row_sims.screen -= before.screen;
    row_sims.stage1 -= before.stage1;
    row_sims.ocba -= before.ocba;
    row_sims.stage2 -= before.stage2;
    row_sims.other -= before.other;
    row_sched.session_hits -= sched_before.session_hits;
    row_sched.cold_opens -= sched_before.cold_opens;
    row_sched.warm_opens -= sched_before.warm_opens;
    row_sched.affinity_hits -= sched_before.affinity_hits;
    row_sched.steals -= sched_before.steals;
    row_sched.migrations -= sched_before.migrations;
    char row[256];
    std::snprintf(row, sizeof(row),
                  "%s{\"samples\":%lld,\"reps\":%d,\"pmc_std\":%.6f,"
                  "\"lhs_std\":%.6f,\"variance_ratio\":%.4f,\"sims\":",
                  json_rows.empty() ? "" : ",", n, reps,
                  std::sqrt(pmc.variance()), std::sqrt(lhs.variance()),
                  lhs.variance() > 0 ? pmc.variance() / lhs.variance() : 0.0);
    json_rows += row;
    json_rows += bench::json_sim_breakdown(row_sims);
    json_rows += ",\"sched\":";
    json_rows += bench::json_sched_breakdown(row_sched);
    json_rows += "}";
  }
  table.print(std::cout, "Yield-estimator spread over " +
                             std::to_string(reps) + " repetitions");
  std::cout << "expected: LHS variance at or below PMC (Stein 1987)\n";
  if (!bench::write_bench_json(options.json, "bench_ablation_sampler",
                               "\"sample_counts\":[" + json_rows + "]")) {
    return 1;
  }
  return 0;
}

// Ablation: LHS vs primitive MC (the DOE speedup of Section 2.1).
// Measures the standard deviation of the yield estimator at equal sample
// counts on a fixed example-1 design point.
#include <cstdio>
#include <iostream>

#include "bench/bench_support.hpp"
#include "src/circuits/circuit_yield.hpp"
#include "src/mc/candidate_yield.hpp"
#include "src/stats/rng.hpp"
#include "src/stats/summary.hpp"

int main(int argc, char** argv) {
  using namespace moheco;
  const BenchOptions options = bench::bench_prologue(
      argc, argv, "Ablation: LHS vs PMC yield-estimator variance");
  circuits::CircuitYieldProblem problem(circuits::make_folded_cascode(),
                                        bench::eval_options(options));
  ThreadPool pool(options.threads);
  // Find a genuinely marginal design (partial yield) by sweeping the bias
  // current of the known-good sizing downwards; the estimator variance is
  // invisible at yield 0 or 1.
  std::vector<double> x = {260e-6, 105e-6, 160e-6, 160e-6, 100e-6,
                           0.7e-6, 0.5e-6, 1.0e-6, 38e-6,  4.6, 1.9};
  for (double ibias = 38e-6; ibias > 5e-6; ibias -= 2e-6) {
    x[8] = ibias;
    const double y = mc::reference_yield(problem, x, 400, 5, pool);
    if (y > 0.30 && y < 0.90) break;
  }
  const int reps = options.scale == BenchScale::kFull ? 60 : 25;

  Table table({"samples", "PMC std dev", "LHS std dev", "variance ratio"});
  for (long long n : {50LL, 100LL, 300LL}) {
    stats::Welford pmc, lhs;
    for (int rep = 0; rep < reps; ++rep) {
      pmc.add(mc::reference_yield(problem, x, n,
                                  stats::derive_seed(options.seed, 1, rep),
                                  pool, stats::SamplingMethod::kPMC));
      lhs.add(mc::reference_yield(problem, x, n,
                                  stats::derive_seed(options.seed, 2, rep),
                                  pool, stats::SamplingMethod::kLHS));
    }
    char p[32], l[32], r[32];
    std::snprintf(p, sizeof(p), "%.4f", std::sqrt(pmc.variance()));
    std::snprintf(l, sizeof(l), "%.4f", std::sqrt(lhs.variance()));
    std::snprintf(r, sizeof(r), "%.2fx",
                  lhs.variance() > 0 ? pmc.variance() / lhs.variance() : 0.0);
    table.add_row({std::to_string(n), p, l, r});
  }
  table.print(std::cout, "Yield-estimator spread over " +
                             std::to_string(reps) + " repetitions");
  std::cout << "expected: LHS variance at or below PMC (Stein 1987)\n";
  return 0;
}

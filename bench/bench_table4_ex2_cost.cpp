// Table 4 of the paper: total number of simulations, example 2.
#include <iostream>

#include "bench/bench_support.hpp"
#include "src/circuits/circuit_yield.hpp"

int main(int argc, char** argv) {
  using namespace moheco;
  const BenchOptions options =
      bench::bench_prologue(argc, argv, "Table 4: example 2 simulation cost");
  circuits::CircuitYieldProblem problem(circuits::make_two_stage_telescopic(),
                                        bench::eval_options(options));
  const auto methods = bench::example2_methods();
  const bench::StudyData data =
      bench::run_example_study("ex2", problem, methods, options);
  bench::print_cost_table(data, methods, "Total number of simulations");
  std::cout << "paper shape: MOHECO ~14.16% of the AS+LHS@500 budget\n";
  return 0;
}

// Table 3 of the paper: yield deviation, example 2 (two-stage telescopic
// cascode, 90nm, severe specs).
#include <iostream>

#include "bench/bench_support.hpp"
#include "src/circuits/circuit_yield.hpp"

int main(int argc, char** argv) {
  using namespace moheco;
  const BenchOptions options =
      bench::bench_prologue(argc, argv, "Table 3: example 2 yield deviation");
  circuits::CircuitYieldProblem problem(circuits::make_two_stage_telescopic(),
                                        bench::eval_options(options));
  const auto methods = bench::example2_methods();
  const bench::StudyData data =
      bench::run_example_study("ex2", problem, methods, options);
  bench::print_accuracy_table(
      data, methods,
      "Deviation of reported yield vs " +
          std::to_string(options.reference_samples) +
          "-sample reference MC (paper: 50000)");
  std::cout << "paper shape: MOHECO at least as accurate as AS+LHS@500 "
               "(0.52% vs 0.89% avg)\n";
  return 0;
}

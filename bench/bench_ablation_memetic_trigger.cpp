// Ablation: the memetic trigger interval (paper: NM local search after 5
// stagnant generations).  Sweeps the interval, including "never" (pure
// OO+AS+LHS) on example 1, reporting final yield and total simulations.
#include <cstdio>
#include <iostream>

#include "bench/bench_support.hpp"
#include "src/circuits/circuit_yield.hpp"
#include "src/mc/candidate_yield.hpp"
#include "src/mc/eval_scheduler.hpp"
#include "src/stats/rng.hpp"
#include "src/stats/summary.hpp"

int main(int argc, char** argv) {
  using namespace moheco;
  const BenchOptions options = bench::bench_prologue(
      argc, argv, "Ablation: memetic local-search trigger interval");
  circuits::CircuitYieldProblem problem(circuits::make_folded_cascode(),
                                        bench::eval_options(options));
  ThreadPool pool(options.threads);
  mc::EvalScheduler reference_scheduler(pool);

  Table table({"trigger (stagnant gens)", "avg reference yield", "avg sims",
               "avg generations"});
  std::string json_rows;
  for (int interval : {3, 5, 10, -1}) {
    stats::Welford yields, sims, gens;
    mc::SimBreakdown breakdown;
    mc::SchedBreakdown sched;
    for (int run = 0; run < options.runs; ++run) {
      core::MohecoOptions o = bench::base_options(options);
      o.seed = stats::derive_seed(options.seed, 0xAB1, run);
      if (interval < 0) {
        o.use_memetic = false;
      } else {
        o.local_search_stagnation = interval;
      }
      const core::MohecoResult r = core::MohecoOptimizer(problem, o).run();
      if (r.best.fitness.feasible) {
        yields.add(mc::reference_yield(problem, r.best.x,
                                       options.reference_samples, 77,
                                       reference_scheduler));
      }
      sims.add(static_cast<double>(r.total_simulations));
      gens.add(r.generations);
      breakdown += r.sim_breakdown;
      sched += r.sched_breakdown;
    }
    char label[32], yld[32], cost[32], gen[32];
    std::snprintf(label, sizeof(label), "%s",
                  interval < 0 ? "never (OO only)"
                               : std::to_string(interval).c_str());
    if (yields.count() > 0) {
      std::snprintf(yld, sizeof(yld), "%.2f%%", 100.0 * yields.mean());
    } else {
      std::snprintf(yld, sizeof(yld), "n/a");
    }
    std::snprintf(cost, sizeof(cost), "%.0f", sims.mean());
    std::snprintf(gen, sizeof(gen), "%.1f", gens.mean());
    table.add_row({label, yld, cost, gen});

    char row[256];
    std::snprintf(row, sizeof(row),
                  "%s{\"trigger\":%d,\"runs\":%d,\"avg_reference_yield\":%.4f,"
                  "\"avg_sims\":%.1f,\"avg_generations\":%.2f,\"sims\":",
                  json_rows.empty() ? "" : ",", interval, options.runs,
                  yields.count() > 0 ? yields.mean() : -1.0, sims.mean(),
                  gens.mean());
    json_rows += row;
    json_rows += bench::json_sim_breakdown(breakdown);
    json_rows += ",\"sched\":";
    json_rows += bench::json_sched_breakdown(sched);
    json_rows += "}";
  }
  table.print(std::cout, "Example 1, " + std::to_string(options.runs) +
                             " runs per setting (paper uses interval 5)");
  if (!bench::write_bench_json(options.json, "bench_ablation_memetic_trigger",
                               "\"triggers\":[" + json_rows + "]")) {
    return 1;
  }
  return 0;
}

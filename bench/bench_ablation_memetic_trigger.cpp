// Ablation: the memetic trigger interval (paper: NM local search after 5
// stagnant generations).  Sweeps the interval, including "never" (pure
// OO+AS+LHS) on example 1, reporting final yield and total simulations.
#include <cstdio>
#include <iostream>

#include "bench/bench_support.hpp"
#include "src/circuits/circuit_yield.hpp"
#include "src/mc/candidate_yield.hpp"
#include "src/stats/rng.hpp"
#include "src/stats/summary.hpp"

int main(int argc, char** argv) {
  using namespace moheco;
  const BenchOptions options = bench::bench_prologue(
      argc, argv, "Ablation: memetic local-search trigger interval");
  circuits::CircuitYieldProblem problem(circuits::make_folded_cascode(),
                                        bench::eval_options(options));
  ThreadPool pool(options.threads);

  Table table({"trigger (stagnant gens)", "avg reference yield", "avg sims",
               "avg generations"});
  for (int interval : {3, 5, 10, -1}) {
    stats::Welford yields, sims, gens;
    for (int run = 0; run < options.runs; ++run) {
      core::MohecoOptions o = bench::base_options(options);
      o.seed = stats::derive_seed(options.seed, 0xAB1, run);
      if (interval < 0) {
        o.use_memetic = false;
      } else {
        o.local_search_stagnation = interval;
      }
      const core::MohecoResult r = core::MohecoOptimizer(problem, o).run();
      if (r.best.fitness.feasible) {
        yields.add(mc::reference_yield(problem, r.best.x,
                                       options.reference_samples, 77, pool));
      }
      sims.add(static_cast<double>(r.total_simulations));
      gens.add(r.generations);
    }
    char label[32], yld[32], cost[32], gen[32];
    std::snprintf(label, sizeof(label), "%s",
                  interval < 0 ? "never (OO only)"
                               : std::to_string(interval).c_str());
    if (yields.count() > 0) {
      std::snprintf(yld, sizeof(yld), "%.2f%%", 100.0 * yields.mean());
    } else {
      std::snprintf(yld, sizeof(yld), "n/a");
    }
    std::snprintf(cost, sizeof(cost), "%.0f", sims.mean());
    std::snprintf(gen, sizeof(gen), "%.1f", gens.mean());
    table.add_row({label, yld, cost, gen});
  }
  table.print(std::cout, "Example 1, " + std::to_string(options.runs) +
                             " runs per setting (paper uses interval 5)");
  return 0;
}

// Micro benchmark for the transient engine: timesteps/sec on the 5T OTA
// step-response testbench (the workload a transient-aware yield flow runs
// once per Monte-Carlo sample), reported for both linear-solve backends.
// Establishes the perf baseline for future transient optimizations; run
// with --scale=full for longer timing windows.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_support.hpp"
#include "src/circuits/topology.hpp"
#include "src/common/table.hpp"
#include "src/spice/dc_solver.hpp"
#include "src/spice/tran_solver.hpp"

namespace {

using namespace moheco;

struct Timing {
  long long steps = 0;
  long long newton = 0;
  double seconds = 0.0;
  int runs = 0;
};

Timing time_mode(spice::TranSolver& tran, const spice::TranOptions& options,
                 const std::vector<double>& op, int runs) {
  Timing timing;
  timing.runs = runs;
  const auto start = std::chrono::steady_clock::now();
  for (int r = 0; r < runs; ++r) {
    if (tran.run(options, &op) != spice::SolveStatus::kOk) {
      std::fprintf(stderr, "transient failed\n");
      std::exit(1);
    }
    timing.steps += tran.stats().steps;
    timing.newton += tran.stats().newton_iterations;
  }
  timing.seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  return timing;
}

std::string format_rate(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.3g", value);
  return buffer;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions options = bench::bench_prologue(
      argc, argv, "Micro: transient timesteps/sec, 5T OTA step testbench");
  const int runs = options.scale == BenchScale::kSmoke
                       ? 20
                       : options.scale == BenchScale::kFull ? 1000 : 200;

  auto topology = circuits::make_five_transistor_ota();
  const std::vector<double> x0 = {60e-6, 40e-6, 20e-6, 0.7e-6, 0.85};
  circuits::BuiltCircuit circuit =
      topology->build(x0, circuits::Testbench::kStepBuffer);

  spice::DcSolver dc(circuit.netlist);
  if (dc.solve(spice::DcOptions{}) != spice::SolveStatus::kOk) {
    std::fprintf(stderr, "DC solve failed\n");
    return 1;
  }
  const std::vector<double> op = dc.op().solution;

  spice::TranOptions adaptive;
  adaptive.t_stop = circuit.step.t_stop;
  spice::TranOptions fixed = adaptive;
  fixed.adaptive = false;
  fixed.dt_init = adaptive.t_stop / 3000.0;

  // One solver per backend; each reuses its workspace (and, for sparse,
  // its symbolic analysis) across every run.
  spice::TranSolver tran_dense(circuit.netlist, spice::SolverBackend::kDense);
  spice::TranSolver tran_sparse(circuit.netlist, spice::SolverBackend::kSparse);

  // Warm up caches and the branch predictor before timing.
  time_mode(tran_dense, adaptive, op, 3);
  time_mode(tran_sparse, adaptive, op, 3);

  Table table({"mode", "backend", "runs", "steps/run", "newton/step",
               "steps/sec", "transients/sec"});
  const struct {
    const char* name;
    const spice::TranOptions* mode;
  } modes[] = {{"adaptive", &adaptive}, {"fixed-3000", &fixed}};
  const struct {
    const char* name;
    spice::TranSolver* solver;
  } backends[] = {{"dense", &tran_dense}, {"sparse", &tran_sparse}};
  std::string json_rows;
  for (const auto& m : modes) {
    for (const auto& b : backends) {
      const Timing t = time_mode(*b.solver, *m.mode, op, runs);
      const double steps_per_run = static_cast<double>(t.steps) / t.runs;
      const double steps_per_sec = t.steps / t.seconds;
      table.add_row({m.name, b.name, std::to_string(t.runs),
                     format_rate(steps_per_run),
                     format_rate(static_cast<double>(t.newton) / t.steps),
                     format_rate(steps_per_sec),
                     format_rate(t.runs / t.seconds)});
      char row[256];
      std::snprintf(row, sizeof(row),
                    "%s{\"mode\":\"%s\",\"backend\":\"%s\","
                    "\"steps_per_sec\":%.1f,\"transients_per_sec\":%.2f}",
                    json_rows.empty() ? "" : ",", m.name, b.name,
                    steps_per_sec, t.runs / t.seconds);
      json_rows += row;
    }
  }
  table.print(std::cout,
              "transient micro bench (" + std::to_string(circuit.netlist
                                                             .num_nodes()) +
                  " nodes)");
  if (!options.json.empty()) {
    std::ofstream out(options.json);
    out << "{\"bench_micro_transient\":{\"modes\":[" << json_rows << "]}}\n";
    if (!out) {
      std::fprintf(stderr, "failed to write %s\n", options.json.c_str());
      return 1;
    }
  }
  return 0;
}

// Micro benchmarks (google-benchmark) for the substrate: one MC sample
// (DC + AC + extraction) on both example circuits, the DC solve alone, the
// dense LU factorization, and the OCBA allocation step.
#include <benchmark/benchmark.h>

#include "src/circuits/circuit_yield.hpp"
#include "src/linalg/lu.hpp"
#include "src/mc/ocba.hpp"
#include "src/spice/dc_solver.hpp"
#include "src/stats/rng.hpp"
#include "src/stats/samplers.hpp"

namespace {

using namespace moheco;

const std::vector<double>& folded_x0() {
  static const std::vector<double> x = {200e-6, 120e-6, 160e-6, 160e-6,
                                        100e-6, 0.7e-6, 0.5e-6, 1.0e-6,
                                        35e-6,  4.5,    1.9};
  return x;
}

const std::vector<double>& telescopic_x0() {
  static const std::vector<double> x = {50e-6,  40e-6, 60e-6,   80e-6,
                                        40e-6,  100e-6, 0.2e-6, 0.2e-6,
                                        0.15e-6, 5.0e-5, 4.0,   1.1e-12,
                                        300.0};
  return x;
}

void BM_McSampleFoldedCascode(benchmark::State& state) {
  circuits::CircuitYieldProblem problem(circuits::make_folded_cascode());
  auto session = problem.open(folded_x0());
  const auto xi = stats::sample_standard_normal(
      stats::SamplingMethod::kLHS, 256, problem.noise_dim(), 11);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        session->evaluate({xi.row(i % 256), xi.cols()}));
    ++i;
  }
}
BENCHMARK(BM_McSampleFoldedCascode);

void BM_McSampleTelescopic(benchmark::State& state) {
  circuits::CircuitYieldProblem problem(
      circuits::make_two_stage_telescopic());
  auto session = problem.open(telescopic_x0());
  const auto xi = stats::sample_standard_normal(
      stats::SamplingMethod::kLHS, 256, problem.noise_dim(), 12);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        session->evaluate({xi.row(i % 256), xi.cols()}));
    ++i;
  }
}
BENCHMARK(BM_McSampleTelescopic);

void BM_DcSolveFoldedCascode(benchmark::State& state) {
  auto topo = circuits::make_folded_cascode();
  circuits::BuiltCircuit circuit = topo->build(folded_x0());
  spice::DcSolver solver(circuit.netlist);
  spice::DcOptions options;
  std::vector<double> warm;
  solver.solve(options, &warm);  // nominal solution for warm starts
  for (auto _ : state) {
    std::vector<double> x = warm;
    benchmark::DoNotOptimize(solver.solve(options, &x));
  }
}
BENCHMARK(BM_DcSolveFoldedCascode);

void BM_DenseLu(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  stats::Rng rng(5);
  linalg::MatrixD a(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) a(r, c) = rng.normal();
    a(r, r) += static_cast<double>(n);
  }
  linalg::LuSolver<double> solver;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.factor(a));
  }
}
BENCHMARK(BM_DenseLu)->Arg(16)->Arg(32)->Arg(64);

void BM_OcbaAllocation(benchmark::State& state) {
  const auto s = static_cast<std::size_t>(state.range(0));
  stats::Rng rng(6);
  std::vector<double> means(s), vars(s);
  for (std::size_t i = 0; i < s; ++i) {
    means[i] = rng.uniform();
    vars[i] = 0.01 + 0.2 * rng.uniform();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(mc::ocba_allocation(means, vars, 10000));
  }
}
BENCHMARK(BM_OcbaAllocation)->Arg(50)->Arg(500);

}  // namespace

BENCHMARK_MAIN();

// Micro benchmarks (google-benchmark) for the substrate: one MC sample
// (DC + AC + extraction) on both example circuits, the DC solve alone under
// each linear-solve backend, the dense LU factorization, the sparse
// refactor+solve hot path on generated ladders, and the OCBA allocation
// step.
#include <benchmark/benchmark.h>

#include "src/circuits/circuit_yield.hpp"
#include "src/linalg/lu.hpp"
#include "src/mc/ocba.hpp"
#include "src/spice/dc_solver.hpp"
#include "src/spice/mna.hpp"
#include "src/spice/netlist_gen.hpp"
#include "src/stats/rng.hpp"
#include "src/stats/samplers.hpp"

namespace {

using namespace moheco;

const std::vector<double>& folded_x0() {
  static const std::vector<double> x = {200e-6, 120e-6, 160e-6, 160e-6,
                                        100e-6, 0.7e-6, 0.5e-6, 1.0e-6,
                                        35e-6,  4.5,    1.9};
  return x;
}

const std::vector<double>& telescopic_x0() {
  static const std::vector<double> x = {50e-6,  40e-6, 60e-6,   80e-6,
                                        40e-6,  100e-6, 0.2e-6, 0.2e-6,
                                        0.15e-6, 5.0e-5, 4.0,   1.1e-12,
                                        300.0};
  return x;
}

void BM_McSampleFoldedCascode(benchmark::State& state) {
  circuits::CircuitYieldProblem problem(circuits::make_folded_cascode());
  auto session = problem.open(folded_x0());
  const auto xi = stats::sample_standard_normal(
      stats::SamplingMethod::kLHS, 256, problem.noise_dim(), 11);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        session->evaluate({xi.row(i % 256), xi.cols()}));
    ++i;
  }
}
BENCHMARK(BM_McSampleFoldedCascode);

void BM_McSampleTelescopic(benchmark::State& state) {
  circuits::CircuitYieldProblem problem(
      circuits::make_two_stage_telescopic());
  auto session = problem.open(telescopic_x0());
  const auto xi = stats::sample_standard_normal(
      stats::SamplingMethod::kLHS, 256, problem.noise_dim(), 12);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        session->evaluate({xi.row(i % 256), xi.cols()}));
    ++i;
  }
}
BENCHMARK(BM_McSampleTelescopic);

void BM_DcSolveFoldedCascode(benchmark::State& state) {
  const auto backend = state.range(0) == 0 ? spice::SolverBackend::kDense
                                           : spice::SolverBackend::kSparse;
  auto topo = circuits::make_folded_cascode();
  circuits::BuiltCircuit circuit = topo->build(folded_x0());
  spice::DcSolver solver(circuit.netlist, backend);
  spice::DcOptions options;
  std::vector<double> warm;
  solver.solve(options, &warm);  // nominal solution for warm starts
  for (auto _ : state) {
    std::vector<double> x = warm;
    benchmark::DoNotOptimize(solver.solve(options, &x));
  }
  state.SetLabel(to_string(solver.backend()));
}
BENCHMARK(BM_DcSolveFoldedCascode)->Arg(0)->Arg(1);

// Steady-state assemble + factor + solve on the RC ladder, per backend:
// the sparse path reuses its symbolic analysis, which is what the inner
// Monte-Carlo loop pays per sample on large systems.
void BM_LadderSolve(benchmark::State& state) {
  const auto backend = state.range(1) == 0 ? spice::SolverBackend::kDense
                                           : spice::SolverBackend::kSparse;
  spice::LadderSpec spec;
  spec.sections = static_cast<int>(state.range(0));
  const spice::Netlist netlist = make_rc_ladder(spec);
  const spice::MnaLayout layout(netlist);
  spice::MnaSystem<double> sys;
  sys.reset(layout.size(), backend);
  std::vector<double> x;
  for (auto _ : state) {
    sys.begin_assembly();
    spice::Stamper<double> stamper(sys);
    stamp_linear_static(netlist, layout, stamper, /*gmin=*/1e-12,
                        /*source_scale=*/1.0, /*time=*/-1.0);
    sys.end_assembly();
    x = sys.rhs();
    if (!sys.factor()) {
      state.SkipWithError("factor failed");
      break;
    }
    sys.solve(x);
    benchmark::DoNotOptimize(x.data());
  }
  state.SetLabel(to_string(sys.backend()));
}
BENCHMARK(BM_LadderSolve)
    ->Args({100, 0})
    ->Args({100, 1})
    ->Args({500, 0})
    ->Args({500, 1})
    ->Args({2000, 1});

void BM_DenseLu(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  stats::Rng rng(5);
  linalg::MatrixD a(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) a(r, c) = rng.normal();
    a(r, r) += static_cast<double>(n);
  }
  linalg::LuSolver<double> solver;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.factor(a));
  }
}
BENCHMARK(BM_DenseLu)->Arg(16)->Arg(32)->Arg(64);

void BM_OcbaAllocation(benchmark::State& state) {
  const auto s = static_cast<std::size_t>(state.range(0));
  stats::Rng rng(6);
  std::vector<double> means(s), vars(s);
  for (std::size_t i = 0; i < s; ++i) {
    means[i] = rng.uniform();
    vars[i] = 0.01 + 0.2 * rng.uniform();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(mc::ocba_allocation(means, vars, 10000));
  }
}
BENCHMARK(BM_OcbaAllocation)->Arg(50)->Arg(500);

}  // namespace

BENCHMARK_MAIN();

// Fig. 6 of the paper: the two bar series (average yield-estimate deviation
// and average number of simulations) across the example-1 methods.
#include <cstdio>
#include <iostream>

#include "bench/bench_support.hpp"
#include "src/circuits/circuit_yield.hpp"
#include "src/stats/summary.hpp"

int main(int argc, char** argv) {
  using namespace moheco;
  const BenchOptions options = bench::bench_prologue(
      argc, argv, "Fig. 6: example 1 deviation & cost per method");
  circuits::CircuitYieldProblem problem(circuits::make_folded_cascode(),
                                        bench::eval_options(options));
  const auto methods = bench::example1_methods();
  const bench::StudyData data =
      bench::run_example_study("ex1", problem, methods, options);

  double max_sims = 0.0;
  for (const auto& m : methods) {
    max_sims = std::max(max_sims,
                        stats::summarize(data.simulations.at(m.name)).mean);
  }
  std::cout << "series 1: average yield-estimate deviation\n";
  for (const auto& m : methods) {
    const double dev = stats::summarize(data.deviations.at(m.name)).mean;
    const int bar = static_cast<int>(dev * 4000);
    std::printf("  %-26s %8.4f%% |%s\n", m.name.c_str(), 100.0 * dev,
                std::string(std::min(bar, 60), '#').c_str());
  }
  std::cout << "series 2: average number of simulations\n";
  for (const auto& m : methods) {
    const double sims = stats::summarize(data.simulations.at(m.name)).mean;
    const int bar = static_cast<int>(60.0 * sims / max_sims);
    std::printf("  %-26s %10.0f |%s\n", m.name.c_str(), sims,
                std::string(std::min(bar, 60), '#').c_str());
  }
  std::cout << "paper shape: MOHECO matches the AS+LHS@500 deviation at a "
               "fraction of the simulations; 300-sim runs are cheap but "
               "inaccurate; 700-sim runs are accurate but ~2.5x the cost of "
               "500\n";
  return 0;
}
